//! Hardening conformance under injected faults (requires the
//! `test-hooks` feature): a tenant whose tick panics is contained — the
//! daemon and every other tenant keep serving bit-identically — and a
//! tenant whose ticks are slow exhausts its in-flight budget into typed
//! `Busy` rejects on the wire.

use dot_core::advisor::Advisor;
use dot_core::controller::{expand_trace, ControlEvent, Controller, ControllerConfig, TraceStep};
use dot_serve::framing::write_frame;
use dot_serve::protocol::{
    ProblemSpec, ProtocolError, Request, RequestFrame, Response, ResponseFrame, TenantId,
    PROTOCOL_VERSION,
};
use dot_serve::{Server, ServerConfig};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
            next_id: 1,
        }
    }

    fn request(&mut self, request: Request) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &RequestFrame { id, request }).expect("send");
        id
    }

    fn recv(&mut self) -> ResponseFrame {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(!line.is_empty(), "server closed the connection");
        serde_json::from_str(line.trim()).expect("parse response")
    }

    fn attach(&mut self, name: &str) -> TenantId {
        let id = self.request(Request::AttachTenant {
            name: Some(name.to_owned()),
            problem: spec(),
            deployed: None,
            controller: None,
        });
        let frame = self.recv();
        assert_eq!(frame.id, id);
        match frame.response {
            Response::Attached { tenant, .. } => tenant,
            other => panic!("attach: {other:?}"),
        }
    }

    /// Observe one step through `ObserveDone`, panicking on error frames.
    fn observe(&mut self, tenant: TenantId, step: &TraceStep) -> (Vec<ControlEvent>, u64) {
        match self.try_observe(tenant, step) {
            Ok(done) => done,
            Err(error) => panic!("observe: {error:?}"),
        }
    }

    /// Observe one step; a typed error frame ends the stream as `Err`.
    fn try_observe(
        &mut self,
        tenant: TenantId,
        step: &TraceStep,
    ) -> Result<(Vec<ControlEvent>, u64), ProtocolError> {
        let id = self.request(Request::Observe {
            tenant,
            step: step.clone(),
        });
        let mut events = Vec::new();
        loop {
            let frame = self.recv();
            assert_eq!(frame.id, id, "frames correlate to the observe request");
            match frame.response {
                Response::Event {
                    tenant: from,
                    event,
                } => {
                    assert_eq!(from, tenant);
                    events.push(event);
                }
                Response::ObserveDone {
                    tenant: from,
                    ticks,
                    ..
                } => {
                    assert_eq!(from, tenant);
                    return Ok((events, ticks));
                }
                Response::Error { error } => return Err(error),
                other => panic!("observe: {other:?}"),
            }
        }
    }
}

fn spec() -> ProblemSpec {
    serde_json::from_str("{\"pool\": \"box2\", \"database\": \"tpcc:2\", \"sla\": 0.5}")
        .expect("problem spec")
}

fn step(text: &str) -> TraceStep {
    serde_json::from_str(text).expect("trace step")
}

/// The offline truth the daemon's healthy tenants must match bit for bit:
/// the same spec, default controller config, replayed in process.
fn offline_events(steps: &[TraceStep]) -> Vec<ControlEvent> {
    let resolved = spec().resolve().expect("resolve");
    let config = ControllerConfig::default();
    let layout = Advisor::builder(&resolved.schema, &resolved.pool, &resolved.workload)
        .sla(resolved.sla)
        .refinements(resolved.refinements)
        .build()
        .expect("advisor")
        .recommend(&config.solver)
        .expect("recommend")
        .layout;
    let mut controller = Controller::new(
        &resolved.schema,
        &resolved.pool,
        &resolved.workload,
        layout,
        resolved.sla,
        config,
    )
    .expect("controller")
    .with_refinements(resolved.refinements);
    let trace = expand_trace(&resolved.schema, &resolved.workload, steps).expect("trace");
    for observed in &trace {
        controller.observe(observed).expect("tick");
    }
    controller.drain_events()
}

#[test]
fn a_panicking_tick_faults_only_its_own_tenant() {
    let server = Server::bind(ServerConfig {
        listen: Some("127.0.0.1:0".to_owned()),
        workers: 8,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let run = thread::spawn(move || server.run().expect("run"));

    let steps = [
        step("{\"shift\": 0.01}"),
        step("{\"shift\": -0.01, \"repeat\": 2}"),
    ];
    let golden = offline_events(&steps);

    // 8 tenants; the last one's name carries the panic hook.
    let mut control = Client::connect(addr);
    let poisoned = control.attach("tenant-__panic__");

    // The injected panic comes back as a typed Faulted frame, not a dead
    // socket or a dead daemon.
    let failure = control
        .try_observe(poisoned, &steps[0])
        .expect_err("a panicking tick must fail the observe");
    match &failure {
        ProtocolError::Faulted { tenant, reason } => {
            assert_eq!(*tenant, poisoned);
            assert!(reason.contains("injected tick panic"), "{reason}");
        }
        other => panic!("expected Faulted, got {other:?}"),
    }
    // The fault latches: a retry answers the same typed error instead of
    // re-ticking possibly-inconsistent state.
    let retry = control
        .try_observe(poisoned, &steps[0])
        .expect_err("a faulted tenant must stay faulted");
    assert!(matches!(retry, ProtocolError::Faulted { .. }));

    // The other 7 tenants — attached and observed after the panic, on
    // their own connections — stream the offline trajectory untouched.
    let mut workers = Vec::new();
    for i in 0..7 {
        let steps = steps.clone();
        let golden = golden.clone();
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(addr);
            let tenant = client.attach(&format!("healthy-{i}"));
            let mut events = Vec::new();
            for step in &steps {
                let (step_events, _) = client.observe(tenant, step);
                events.extend(step_events);
            }
            assert_eq!(
                events, golden,
                "tenant healthy-{i} must be untouched by the fault"
            );
        }));
    }
    for w in workers {
        w.join().expect("healthy tenant thread");
    }

    // The daemon itself never wavered: hello, stats, and a graceful
    // shutdown flushing all 8 tenants (the faulted one flushed with the
    // zero ticks it completed).
    let id = control.request(Request::Hello {
        version: PROTOCOL_VERSION,
    });
    let frame = control.recv();
    assert_eq!(frame.id, id);
    assert!(matches!(frame.response, Response::Hello { .. }));

    control.request(Request::Stats);
    match control.recv().response {
        Response::Stats { tenants, ticks, .. } => {
            assert_eq!(tenants, 8);
            assert_eq!(ticks, 7 * 3, "7 healthy tenants x 3 ticks each");
        }
        other => panic!("stats: {other:?}"),
    }

    control.request(Request::Shutdown);
    match control.recv().response {
        Response::ShuttingDown { tenants } => {
            assert_eq!(tenants.len(), 8);
            let flushed = tenants
                .iter()
                .find(|s| s.tenant == poisoned)
                .expect("faulted tenant still flushes a summary");
            assert_eq!(flushed.ticks, 0, "the panicked tick never counted");
        }
        other => panic!("shutdown: {other:?}"),
    }
    run.join().expect("daemon unwinds cleanly");
}

#[test]
fn an_over_budget_tenant_answers_busy_on_the_wire() {
    let server = Server::bind(ServerConfig {
        listen: Some("127.0.0.1:0".to_owned()),
        workers: 4,
        tenant_inflight_limit: 1,
        busy_retry_ms: 20,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let run = thread::spawn(move || server.run().expect("run"));

    let mut control = Client::connect(addr);
    let tenant = control.attach("tenant-__slow__");

    // A long, slow observe (the hook sleeps every tick) pins the tenant's
    // single budget slot; the holder signals once its first event frame
    // arrives, so the probe below lands inside the busy window.
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let holder = thread::spawn(move || {
        let mut client = Client::connect(addr);
        let id = client.request(Request::Observe {
            tenant,
            step: step("{\"shift\": 0.01, \"repeat\": 40}"),
        });
        let mut signalled = false;
        loop {
            let frame = client.recv();
            assert_eq!(frame.id, id);
            match frame.response {
                Response::Event { .. } => {
                    if !signalled {
                        signalled = true;
                        entered_tx.send(()).unwrap();
                    }
                }
                Response::ObserveDone { ticks, .. } => return ticks,
                other => panic!("holder: {other:?}"),
            }
        }
    });
    entered_rx.recv().expect("holder entered its stream");

    let busy = control
        .try_observe(tenant, &step("{\"shift\": 0.01}"))
        .expect_err("the second observe must be rejected");
    match busy {
        ProtocolError::Busy {
            tenant: from,
            retry_after_ms,
        } => {
            assert_eq!(from, tenant);
            assert_eq!(retry_after_ms, 20);
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    // Once the holder drains, the budget frees and the retry goes through.
    let ticks = holder.join().expect("holder thread");
    assert_eq!(ticks, 40);
    let (_, ticks) = control.observe(tenant, &step("{\"shift\": 0.01}"));
    assert_eq!(ticks, 41);

    control.request(Request::Shutdown);
    assert!(matches!(
        control.recv().response,
        Response::ShuttingDown { .. }
    ));
    run.join().expect("daemon unwinds cleanly");
}
