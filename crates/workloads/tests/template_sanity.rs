//! Sanity checks on every TPC-H template: each must produce plausible,
//! distinct I/O behaviour when planned, and the headline workload-level
//! statistics must hold at multiple scale factors.

use dot_dbms::{exec, planner, EngineConfig, Layout};
use dot_storage::{catalog, IoType};
use dot_workloads::tpch;

#[test]
fn every_template_produces_io_and_touches_lineitem_or_not_as_specified() {
    let s = tpch::schema(1.0);
    let pool = catalog::box2();
    let layout = Layout::uniform(pool.most_expensive(), s.object_count());
    let cfg = EngineConfig::dss();
    let lineitem = s.table_by_name("lineitem").unwrap().object;

    // Templates that never read lineitem.
    let no_lineitem = [2usize, 11, 13, 16, 20, 22];
    for n in 1..=22 {
        let q = tpch::query(&s, n).unwrap();
        let planned = planner::plan_query(&q, &s, &layout, &pool, &cfg);
        let io = planned.cost.total_io();
        assert!(io.total() > 0.0, "Q{n} performs no I/O");
        assert!(io.writes() == 0.0, "Q{n} is read-only but writes");
        let touches = planned.cost.io[lineitem.0].total() > 0.0;
        assert_eq!(
            touches,
            !no_lineitem.contains(&n),
            "Q{n}: lineitem access mismatch"
        );
        assert!(planned.est_time_ms > 0.0);
    }
}

#[test]
fn selective_templates_cost_less_than_q1_on_premium() {
    // Q6 (1.9% of lineitem) must read far less than Q1 (97%) when an index
    // path exists... it has none, so both scan; instead compare Q6 vs Q1
    // CPU-side and MQ17 (index range) vs Q1 I/O-side.
    let s = tpch::schema(1.0);
    let pool = catalog::box2();
    let layout = Layout::uniform(pool.most_expensive(), s.object_count());
    let cfg = EngineConfig::dss();
    let time = |q: &dot_dbms::query::QuerySpec| {
        planner::plan_query(q, &s, &layout, &pool, &cfg).est_time_ms
    };
    let q1 = time(&tpch::query(&s, 1).unwrap());
    let mq17 = time(&tpch::modified_query(&s, 17).unwrap());
    assert!(
        mq17 < q1,
        "index-served MQ17 ({mq17:.0} ms) should beat the full-scan Q1 ({q1:.0} ms) on H-SSD"
    );
}

#[test]
fn templates_scale_linearly_enough_with_sf() {
    let cfg = EngineConfig::dss();
    let pool = catalog::box2();
    let stream_at = |sf: f64| {
        let s = tpch::schema(sf);
        let w = tpch::original_workload(&s);
        let layout = Layout::uniform(pool.most_expensive(), s.object_count());
        exec::estimate_workload(&w.queries, &s, &layout, &pool, &cfg).stream_time_ms
    };
    let t1 = stream_at(1.0);
    let t4 = stream_at(4.0);
    let ratio = t4 / t1;
    assert!(
        ratio > 3.0 && ratio < 5.5,
        "4x scale factor should take roughly 4x the time, got {ratio:.2}x"
    );
}

#[test]
fn workload_io_mix_differs_between_original_and_modified() {
    let s = tpch::schema(5.0);
    let pool = catalog::box2();
    let layout = Layout::uniform(pool.most_expensive(), s.object_count());
    let cfg = EngineConfig::dss();
    let rr_share = |w: &dot_workloads::Workload| {
        let io = exec::estimate_workload(&w.queries, &s, &layout, &pool, &cfg)
            .cost
            .total_io();
        io[IoType::RandRead] / io.total()
    };
    let original = rr_share(&tpch::original_workload(&s));
    let modified = rr_share(&tpch::modified_workload(&s));
    assert!(
        modified > original,
        "modified workload should be more random-read heavy: {modified:.3} vs {original:.3}"
    );
}

#[test]
fn subset_workload_only_references_subset_objects() {
    let s = tpch::subset_schema(1.0);
    let pool = catalog::box2();
    let layout = Layout::uniform(pool.most_expensive(), s.object_count());
    let cfg = EngineConfig::dss();
    let w = tpch::subset_workload(&s);
    let run = exec::estimate_workload(&w.queries, &s, &layout, &pool, &cfg);
    // All I/O lands on the 8 subset objects (vector is exactly that long).
    assert_eq!(run.cost.io.len(), 8);
    assert!(run.cost.total_io().total() > 0.0);
}

#[test]
fn per_template_times_are_distinct() {
    // A smoke test against copy-paste template bugs: the 22 templates must
    // not all collapse onto a handful of identical cost profiles.
    let s = tpch::schema(2.0);
    let pool = catalog::box2();
    let layout = Layout::uniform(pool.most_expensive(), s.object_count());
    let cfg = EngineConfig::dss();
    let mut times: Vec<i64> = (1..=22)
        .map(|n| {
            let q = tpch::query(&s, n).unwrap();
            planner::plan_query(&q, &s, &layout, &pool, &cfg).est_time_ms as i64
        })
        .collect();
    times.sort_unstable();
    times.dedup();
    assert!(
        times.len() >= 15,
        "only {} distinct template times",
        times.len()
    );
}
