//! TPC-H-derived DSS workloads (§4.4 of the paper).
//!
//! The paper runs three DSS workloads against a 30 GB scale-factor-20
//! database whose tables were randomly reshuffled (so heaps are *not*
//! clustered on their primary keys):
//!
//! * the **original** workload — 66 queries, three instances of each of the
//!   22 TPC-H templates, sequentially executed, dominated by sequential-read
//!   I/O (§4.4.1);
//! * the **modified** workload — 100 queries from the five high-selectivity
//!   variants of Q2/Q5/Q9/Q11/Q17 introduced by Canim et al. to emulate an
//!   operational data store; extra key-range predicates make index paths
//!   attractive, producing mixed random/sequential I/O (§4.4.2);
//! * the **subset** workload — 33 queries from 11 templates touching only
//!   `lineitem`, `orders`, `customer`, `part` and their primary indices
//!   (8 objects), small enough for exhaustive search (§4.4.3).
//!
//! Templates are declarative [`QuerySpec`]s capturing each query's
//! planner-visible structure: which tables it reads, with what selectivity,
//! through which join graph, and which indices could serve predicates. Only
//! primary-key indices exist, matching the paper's figures (every index in
//! Fig. 4/6 is a `*_pkey`).

use crate::spec::Workload;
use dot_dbms::query::{QuerySpec, ReadOp, Rel, ScanSpec};
use dot_dbms::{IndexId, Schema, SchemaBuilder, TableId};

/// TPC-H table cardinalities per unit scale factor.
const ROWS_PER_SF: [(&str, f64, f64, f64); 8] = [
    // (name, rows per SF, payload bytes/row, pkey bytes)
    ("region", 5.0, 120.0, 4.0),
    ("nation", 25.0, 128.0, 4.0),
    ("supplier", 10_000.0, 140.0, 8.0),
    ("customer", 150_000.0, 160.0, 8.0),
    ("part", 200_000.0, 155.0, 8.0),
    ("partsupp", 800_000.0, 147.0, 12.0),
    ("orders", 1_500_000.0, 114.0, 8.0),
    ("lineitem", 6_000_000.0, 126.0, 12.0),
];

/// The fixed-cardinality tables (region, nation) do not scale with SF.
fn rows_at(name: &str, per_sf: f64, sf: f64) -> f64 {
    match name {
        "region" | "nation" => per_sf,
        _ => per_sf * sf,
    }
}

/// Build the full 16-object TPC-H schema (8 tables + 8 primary indices) at
/// the given scale factor. The paper's experiments use `sf = 20` (~30 GB
/// with indices). Heaps are unclustered (the paper reshuffles them), and no
/// temp object is declared: like the paper, spill space lives outside the
/// provisioned classes.
pub fn schema(scale_factor: f64) -> Schema {
    assert!(scale_factor > 0.0);
    let mut b = SchemaBuilder::new("tpch").clustered_by_default(false);
    for &(name, per_sf, bytes, key) in &ROWS_PER_SF {
        b = b
            .table(name, rows_at(name, per_sf, scale_factor), bytes)
            .primary_index(key);
    }
    b.build()
}

/// The 8-object subset schema of §4.4.3: `lineitem`, `orders`, `customer`,
/// `part` and their primary indices, at the given scale factor.
pub fn subset_schema(scale_factor: f64) -> Schema {
    assert!(scale_factor > 0.0);
    let mut b = SchemaBuilder::new("tpch-subset").clustered_by_default(false);
    for &(name, per_sf, bytes, key) in &ROWS_PER_SF {
        if matches!(name, "lineitem" | "orders" | "customer" | "part") {
            b = b
                .table(name, rows_at(name, per_sf, scale_factor), bytes)
                .primary_index(key);
        }
    }
    b.build()
}

/// Resolved handles into a TPC-H(-subset) schema.
struct T {
    lineitem: TableId,
    orders: TableId,
    customer: TableId,
    part: TableId,
    partsupp: Option<TableId>,
    supplier: Option<TableId>,
    l_pk: IndexId,
    o_pk: IndexId,
    c_pk: IndexId,
    p_pk: IndexId,
    ps_pk: Option<IndexId>,
    s_pk: Option<IndexId>,
    l_rows: f64,
    o_rows: f64,
}

impl T {
    fn resolve(s: &Schema) -> T {
        let t = |n: &str| s.table_by_name(n).map(|t| t.id);
        let i = |n: &str| s.index_by_name(n).map(|i| i.id);
        T {
            lineitem: t("lineitem").expect("tpch schema"),
            orders: t("orders").expect("tpch schema"),
            customer: t("customer").expect("tpch schema"),
            part: t("part").expect("tpch schema"),
            partsupp: t("partsupp"),
            supplier: t("supplier"),
            l_pk: i("lineitem_pkey").expect("tpch schema"),
            o_pk: i("orders_pkey").expect("tpch schema"),
            c_pk: i("customer_pkey").expect("tpch schema"),
            p_pk: i("part_pkey").expect("tpch schema"),
            ps_pk: i("partsupp_pkey"),
            s_pk: i("supplier_pkey"),
            l_rows: s.table_by_name("lineitem").expect("tpch schema").rows,
            o_rows: s.table_by_name("orders").expect("tpch schema").rows,
        }
    }
}

fn read(name: &str, rel: Rel, agg_rows: f64, sort_rows: f64) -> QuerySpec {
    QuerySpec::read(
        name,
        ReadOp::of(rel)
            .with_agg(agg_rows)
            .with_sort(sort_rows, 64.0),
    )
}

/// Build TPC-H template `n` (1–22) against `schema`. Returns `None` when the
/// template references tables absent from a subset schema.
///
/// Selectivities follow the TPC-H specification's predicate definitions
/// (e.g. Q6 filters ~1.9% of `lineitem`, Q1 ~97%); join fan-outs follow the
/// schema's fixed ratios (4 lineitems/order, 10 orders/customer, 4
/// partsupps/part).
pub fn query(s: &Schema, n: usize) -> Option<QuerySpec> {
    let t = T::resolve(s);
    let scan = ScanSpec::filtered;
    let full = ScanSpec::full;
    let q = match n {
        // Q1: pricing summary — one big scan, heavy aggregation.
        1 => read(
            "Q1",
            Rel::Scan(scan(t.lineitem, 0.97)),
            t.l_rows * 0.97,
            4.0,
        ),
        // Q2: minimum-cost supplier — selective part filter, then
        // index-reachable partsupp and supplier lookups.
        2 => {
            let rel = Rel::join(
                Rel::join(
                    Rel::Scan(scan(t.part, 0.004)),
                    full(t.partsupp?),
                    4.0,
                    t.ps_pk,
                ),
                full(t.supplier?),
                1.0,
                t.s_pk,
            );
            read("Q2", rel, 0.0, 100.0)
        }
        // Q3: shipping priority — customer/orders hash join (no custkey
        // index), lineitem reachable through its pkey prefix.
        3 => {
            let rel = Rel::join(
                Rel::join(
                    Rel::Scan(scan(t.customer, 0.2)),
                    scan(t.orders, 0.48),
                    4.8,
                    None,
                ),
                full(t.lineitem),
                2.1,
                Some(t.l_pk),
            );
            read("Q3", rel, t.o_rows * 0.96, 10.0)
        }
        // Q4: order priority checking — quarter of orders, EXISTS lineitem.
        4 => {
            let rel = Rel::join(
                Rel::Scan(scan(t.orders, 0.038)),
                full(t.lineitem),
                1.0,
                Some(t.l_pk),
            );
            read("Q4", rel, t.o_rows * 0.038, 5.0)
        }
        // Q5: local supplier volume — year of orders through the join chain.
        5 => {
            let rel = Rel::join(
                Rel::join(
                    Rel::join(
                        Rel::Scan(scan(t.orders, 0.15)),
                        full(t.lineitem),
                        4.0,
                        Some(t.l_pk),
                    ),
                    full(t.customer),
                    1.0,
                    Some(t.c_pk),
                ),
                full(t.supplier?),
                0.2,
                t.s_pk,
            );
            read("Q5", rel, t.o_rows * 0.15 * 4.0 * 0.2, 5.0)
        }
        // Q6: forecasting revenue change — the classic selective scan.
        6 => read(
            "Q6",
            Rel::Scan(scan(t.lineitem, 0.019)),
            t.l_rows * 0.019,
            0.0,
        ),
        // Q7: volume shipping — two years of lineitem through orders and
        // customer, nation-pair filter.
        7 => {
            let rel = Rel::join(
                Rel::join(
                    Rel::Scan(scan(t.lineitem, 0.3)),
                    full(t.orders),
                    1.0,
                    Some(t.o_pk),
                ),
                full(t.customer),
                0.04,
                Some(t.c_pk),
            );
            let _ = t.supplier?; // Q7 references supplier; absent in subset.
            read("Q7", rel, t.l_rows * 0.3 * 0.04, 4.0)
        }
        // Q8: national market share — rare part type through lineitem.
        8 => {
            let rel = Rel::join(
                Rel::join(
                    Rel::join(
                        Rel::Scan(scan(t.part, 0.0015)),
                        full(t.lineitem),
                        30.0,
                        None,
                    ),
                    full(t.orders),
                    0.3,
                    Some(t.o_pk),
                ),
                full(t.customer),
                0.2,
                Some(t.c_pk),
            );
            let _ = t.supplier?;
            read("Q8", rel, t.l_rows * 0.0015 * 9.0, 2.0)
        }
        // Q9: product type profit — part name LIKE, full join fan.
        9 => {
            let rel = Rel::join(
                Rel::join(
                    Rel::join(Rel::Scan(scan(t.part, 0.055)), full(t.lineitem), 30.0, None),
                    full(t.partsupp?),
                    1.0,
                    t.ps_pk,
                ),
                full(t.orders),
                1.0,
                Some(t.o_pk),
            );
            read("Q9", rel, t.l_rows * 0.055 * 30.0 / 30.0, 175.0)
        }
        // Q10: returned items — quarter of orders, returned lineitems.
        10 => {
            let rel = Rel::join(
                Rel::join(
                    Rel::Scan(scan(t.orders, 0.038)),
                    full(t.lineitem),
                    1.0,
                    Some(t.l_pk),
                ),
                full(t.customer),
                1.0,
                Some(t.c_pk),
            );
            read("Q10", rel, t.o_rows * 0.038, 20.0)
        }
        // Q11: important stock — full partsupp with supplier-nation filter.
        11 => {
            let rel = Rel::join(
                Rel::Scan(full(t.partsupp?)),
                full(t.supplier?),
                0.04,
                t.s_pk,
            );
            read("Q11", rel, 0.0, 30_000.0)
        }
        // Q12: shipping modes — rare shipmode pair, orders by pkey.
        12 => {
            let rel = Rel::join(
                Rel::Scan(scan(t.lineitem, 0.0052)),
                full(t.orders),
                1.0,
                Some(t.o_pk),
            );
            read("Q12", rel, t.l_rows * 0.0052, 2.0)
        }
        // Q13: customer distribution — big customer/orders hash join.
        13 => {
            let rel = Rel::join(Rel::Scan(full(t.customer)), scan(t.orders, 0.98), 9.8, None);
            read("Q13", rel, t.o_rows * 0.98, 50.0)
        }
        // Q14: promotion effect — month of lineitem, part lookups.
        14 => {
            let rel = Rel::join(
                Rel::Scan(scan(t.lineitem, 0.0124)),
                full(t.part),
                1.0,
                Some(t.p_pk),
            );
            read("Q14", rel, t.l_rows * 0.0124, 0.0)
        }
        // Q15: top supplier — quarter of lineitem, supplier lookups.
        15 => {
            let rel = Rel::join(
                Rel::Scan(scan(t.lineitem, 0.038)),
                full(t.supplier?),
                1.0,
                t.s_pk,
            );
            read("Q15", rel, t.l_rows * 0.038, 1.0)
        }
        // Q16: parts/supplier relationship — full partsupp with part filter.
        16 => {
            let rel = Rel::join(
                Rel::Scan(full(t.partsupp?)),
                full(t.part),
                0.11,
                Some(t.p_pk),
            );
            read("Q16", rel, 0.0, 18_000.0)
        }
        // Q17: small-quantity-order revenue — rare part, lineitem hash join
        // (no partkey index) plus the correlated aggregate re-read.
        17 => {
            let rel = Rel::join(Rel::Scan(scan(t.part, 0.001)), full(t.lineitem), 30.0, None);
            read("Q17", rel, t.l_rows * 0.001 * 30.0, 0.0)
        }
        // Q18: large-volume customer — full lineitem aggregate feeding rare
        // order lookups.
        18 => {
            let rel = Rel::join(
                Rel::join(
                    Rel::Scan(full(t.lineitem)),
                    full(t.orders),
                    1e-5,
                    Some(t.o_pk),
                ),
                full(t.customer),
                1.0,
                Some(t.c_pk),
            );
            read("Q18", rel, t.l_rows, 100.0)
        }
        // Q19: discounted revenue — brand/container/quantity disjunction.
        19 => {
            let rel = Rel::join(
                Rel::Scan(scan(t.lineitem, 0.002)),
                full(t.part),
                0.2,
                Some(t.p_pk),
            );
            read("Q19", rel, t.l_rows * 0.002 * 0.2, 0.0)
        }
        // Q20: potential part promotion.
        20 => {
            let rel = Rel::join(
                Rel::join(
                    Rel::Scan(scan(t.part, 0.011)),
                    full(t.partsupp?),
                    4.0,
                    t.ps_pk,
                ),
                full(t.supplier?),
                1.0,
                t.s_pk,
            );
            read("Q20", rel, 0.0, 1_800.0)
        }
        // Q21: suppliers who kept orders waiting — nation's suppliers
        // through lineitem (hash) and orders (pkey).
        21 => {
            let rel = Rel::join(
                Rel::join(
                    Rel::Scan(scan(t.supplier?, 0.04)),
                    full(t.lineitem),
                    300.0,
                    None,
                ),
                full(t.orders),
                0.49,
                Some(t.o_pk),
            );
            read("Q21", rel, t.l_rows * 0.04 * 0.5, 100.0)
        }
        // Q22: global sales opportunity — customer anti-join against orders.
        22 => {
            let rel = Rel::join(Rel::Scan(scan(t.customer, 0.25)), full(t.orders), 0.1, None);
            read("Q22", rel, 0.0, 7.0)
        }
        _ => return None,
    };
    Some(q)
}

/// Templates of the modified (operational-data-store) workload: Q2, Q5, Q9,
/// Q11 and Q17 with added key-range predicates on `partkey`, `orderkey`
/// and/or `suppkey` (§4.4.2, after Canim et al.). The added predicates are
/// servable by the primary-key indices, so the planner can trade sequential
/// scans for random-read index paths when placement makes those cheap.
pub fn modified_query(s: &Schema, n: usize) -> Option<QuerySpec> {
    let t = T::resolve(s);
    let q = match n {
        2 => {
            // Tight partkey range: a handful of parts, then pkey lookups.
            let rel = Rel::join(
                Rel::join(
                    Rel::Scan(ScanSpec::indexed(t.part, 2e-5, t.p_pk)),
                    ScanSpec::full(t.partsupp?),
                    4.0,
                    t.ps_pk,
                ),
                ScanSpec::full(t.supplier?),
                1.0,
                t.s_pk,
            );
            read("MQ2", rel, 0.0, 100.0)
        }
        5 => {
            // Orderkey range on orders: a slice of orders drives lookups
            // into lineitem, then customer and supplier. On premium storage
            // the planner probes; on bulk storage it flips the lineitem leg
            // to a hash join.
            let rel = Rel::join(
                Rel::join(
                    Rel::join(
                        Rel::Scan(ScanSpec {
                            table: t.orders,
                            selectivity: 3.5e-3,
                            index: Some(t.o_pk),
                            index_selectivity: 9e-3,
                        }),
                        ScanSpec::full(t.lineitem),
                        4.0,
                        Some(t.l_pk),
                    ),
                    ScanSpec::full(t.customer),
                    1.0,
                    Some(t.c_pk),
                ),
                ScanSpec::full(t.supplier?),
                0.2,
                t.s_pk,
            );
            read("MQ5", rel, 1_000.0, 5.0)
        }
        9 => {
            // Partkey range plus the name filter, joined through lineitem
            // (no partkey index: a hash join with a bulk scan) and into
            // partsupp by its primary key — the modified workload's mix of
            // one big sequential leg and random probe legs.
            let rel = Rel::join(
                Rel::join(
                    Rel::Scan(ScanSpec {
                        table: t.part,
                        selectivity: 1.6e-4,
                        index: Some(t.p_pk),
                        index_selectivity: 3e-3,
                    }),
                    ScanSpec::full(t.lineitem),
                    30.0,
                    None,
                ),
                ScanSpec::full(t.partsupp?),
                1.0,
                t.ps_pk,
            );
            read("MQ9", rel, 20_000.0, 175.0)
        }
        11 => {
            // Suppkey range on supplier; partsupp still needs a full scan
            // (its pkey is partkey-led), keeping some sequential I/O in the
            // mix.
            let rel = Rel::join(
                Rel::Scan(ScanSpec {
                    table: t.supplier?,
                    selectivity: 4e-4,
                    index: t.s_pk,
                    index_selectivity: 1e-2,
                }),
                ScanSpec::full(t.partsupp?),
                80.0,
                None,
            );
            read("MQ11", rel, 0.0, 100.0)
        }
        17 => {
            // Orderkey range on lineitem plus the rare-part filter.
            let rel = Rel::join(
                Rel::Scan(ScanSpec {
                    table: t.lineitem,
                    selectivity: 4.5e-3,
                    index: Some(t.l_pk),
                    index_selectivity: 4.5e-3,
                }),
                ScanSpec::full(t.part),
                1e-3,
                Some(t.p_pk),
            );
            read("MQ17", rel, t.l_rows * 4.5e-3, 0.0)
        }
        _ => return None,
    };
    Some(q)
}

/// The 11 templates of the §4.4.3 exhaustive-search subset.
pub const SUBSET_TEMPLATES: [usize; 11] = [1, 3, 4, 6, 12, 13, 14, 17, 18, 19, 22];

/// The original TPC-H workload: 22 templates, three instances each
/// (66 queries), executed sequentially (§4.4.1).
pub fn original_workload(schema: &Schema) -> Workload {
    let queries: Vec<QuerySpec> = (1..=22)
        .map(|n| {
            query(schema, n)
                .expect("full schema has all templates")
                .with_weight(3.0)
        })
        .collect();
    Workload::dss("tpch-original", queries)
}

/// The modified TPC-H workload: Q2/5/9/11/17 variants, twenty instances each
/// (100 queries, §4.4.2).
pub fn modified_workload(schema: &Schema) -> Workload {
    let queries: Vec<QuerySpec> = [2usize, 5, 9, 11, 17]
        .iter()
        .map(|&n| {
            modified_query(schema, n)
                .expect("full schema has all modified templates")
                .with_weight(20.0)
        })
        .collect();
    Workload::dss("tpch-modified", queries)
}

/// The subset workload: 11 templates over the 8-object schema, three
/// instances each (33 queries, §4.4.3).
pub fn subset_workload(schema: &Schema) -> Workload {
    let queries: Vec<QuerySpec> = SUBSET_TEMPLATES
        .iter()
        .map(|&n| {
            query(schema, n)
                .expect("subset templates avoid missing tables")
                .with_weight(3.0)
        })
        .collect();
    Workload::dss("tpch-subset", queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper_shape() {
        let s = schema(20.0);
        assert_eq!(s.tables().len(), 8);
        assert_eq!(s.indexes().len(), 8);
        // §4.4.3: "the whole TPC-H data set (that contains 16 objects)".
        assert_eq!(s.object_count(), 16);
        // ~30 GB database at SF 20 (±25%).
        let gb = s.total_size_gb();
        assert!(gb > 24.0 && gb < 40.0, "total {gb} GB");
        let li = s.table_by_name("lineitem").unwrap();
        assert_eq!(li.rows, 120_000_000.0);
        assert!(!li.clustered);
    }

    #[test]
    fn subset_schema_has_eight_objects() {
        let s = subset_schema(20.0);
        assert_eq!(s.object_count(), 8);
        for name in ["lineitem", "orders", "customer", "part"] {
            assert!(s.table_by_name(name).is_some(), "{name} missing");
        }
        assert!(s.table_by_name("supplier").is_none());
    }

    #[test]
    fn all_22_templates_build_on_full_schema() {
        let s = schema(1.0);
        for n in 1..=22 {
            let q = query(&s, n).unwrap_or_else(|| panic!("Q{n} missing"));
            q.validate().unwrap_or_else(|e| panic!("Q{n}: {e}"));
        }
        assert!(query(&s, 0).is_none());
        assert!(query(&s, 23).is_none());
    }

    #[test]
    fn subset_templates_build_on_subset_schema() {
        let s = subset_schema(1.0);
        for &n in &SUBSET_TEMPLATES {
            let q = query(&s, n).unwrap_or_else(|| panic!("Q{n} missing on subset"));
            q.validate().unwrap_or_else(|e| panic!("Q{n}: {e}"));
        }
        // A template needing supplier must gracefully return None.
        assert!(query(&s, 2).is_none());
        assert!(query(&s, 11).is_none());
    }

    #[test]
    fn modified_templates_build_and_are_selective() {
        let s = schema(20.0);
        for &n in &[2usize, 5, 9, 11, 17] {
            let q = modified_query(&s, n).unwrap_or_else(|| panic!("MQ{n} missing"));
            q.validate().unwrap_or_else(|e| panic!("MQ{n}: {e}"));
        }
        assert!(modified_query(&s, 3).is_none());
    }

    #[test]
    fn workload_shapes_match_paper() {
        let s = schema(20.0);
        let orig = original_workload(&s);
        assert_eq!(orig.queries.len(), 22);
        assert_eq!(orig.queries_per_stream(), 66.0);
        let modi = modified_workload(&s);
        assert_eq!(modi.queries.len(), 5);
        assert_eq!(modi.queries_per_stream(), 100.0);
        let sub = subset_workload(&subset_schema(20.0));
        assert_eq!(sub.queries.len(), 11);
        assert_eq!(sub.queries_per_stream(), 33.0);
    }

    #[test]
    fn original_workload_is_sequential_read_dominated() {
        use dot_dbms::{exec, EngineConfig, Layout};
        use dot_storage::{catalog, IoType};
        let s = schema(20.0);
        let pool = catalog::box2();
        let w = original_workload(&s);
        let layout = Layout::uniform(pool.class_by_name("HDD").unwrap().id, s.object_count());
        let r = exec::estimate_workload(&w.queries, &s, &layout, &pool, &EngineConfig::dss());
        let io = r.cost.total_io();
        assert!(
            io[IoType::SeqRead] > 5.0 * io[IoType::RandRead],
            "SR {} vs RR {}",
            io[IoType::SeqRead],
            io[IoType::RandRead]
        );
    }

    #[test]
    fn modified_workload_has_mixed_io_on_fast_storage() {
        use dot_dbms::{exec, EngineConfig, Layout};
        use dot_storage::{catalog, IoType};
        let s = schema(20.0);
        let pool = catalog::box2();
        let w = modified_workload(&s);
        let layout = Layout::uniform(pool.class_by_name("H-SSD").unwrap().id, s.object_count());
        let r = exec::estimate_workload(&w.queries, &s, &layout, &pool, &EngineConfig::dss());
        let io = r.cost.total_io();
        // Random reads become a substantial share once placement favours
        // index paths.
        assert!(
            io[IoType::RandRead] > 0.05 * io[IoType::SeqRead],
            "RR {} vs SR {}",
            io[IoType::RandRead],
            io[IoType::SeqRead]
        );
    }
}
