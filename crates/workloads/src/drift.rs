//! Workload drift generators and the drift *detection* metric: before/after
//! pairs for re-provisioning, and the profile distance an online controller
//! thresholds on.
//!
//! DOT provisions a layout once, against a workload snapshot. Real mixed
//! workloads *drift*: the HTAP literature describes systems that swing
//! between analytical phases (scan-heavy, response-time SLAs) and
//! transactional phases (update-heavy, throughput SLAs), which flips the
//! index-scan-vs-seq-scan trade DOT's move scores are built on. These
//! generators perturb an existing [`Workload`] — or produce a matched
//! analytical/transactional pair over one schema — so the re-provisioning
//! planner (`dot_core::replan`) can be exercised and benchmarked against
//! every workload family in this crate (TPC-H, TPC-C, YCSB, synthetic).
//!
//! The detection half is [`signature`] / [`profile_distance`]: a workload
//! collapses to a [`WorkloadSignature`] (read/write mix, demand, and
//! per-query-class weight shares), and two signatures are compared with a
//! bounded distance in `[0, 1]`. The controller (`dot_core::controller`)
//! computes this distance between the deployed recommendation's baseline
//! profile and each observed profile, and replans when it crosses a
//! threshold.
//!
//! All generators and the metric are pure: they never mutate their input,
//! and the same inputs always produce the same result.

use crate::spec::{PerfMetric, Workload};
use dot_dbms::query::{Op, QuerySpec, ReadOp, Rel, ScanSpec};
use dot_dbms::Schema;
use serde::{Deserialize, Serialize};

/// True when any operation of the query writes (insert or update) — the
/// read/write classification behind [`signature`]'s write fraction, shared
/// with the measured-telemetry fold ([`crate::telemetry`]) so declared and
/// measured signatures agree on what counts as a write.
pub fn writes(q: &QuerySpec) -> bool {
    q.ops
        .iter()
        .any(|op| matches!(op, Op::Insert(_) | Op::Update(_)))
}

/// Shift the read/write balance of a workload by reweighting its queries.
///
/// `shift ∈ (-1, 1)`: positive values scale every write-bearing query's
/// weight by `1 + shift` and every read-only query's by `1 - shift`
/// (drift toward a transactional phase); negative values drift toward an
/// analytical phase. `tasks_per_stream` is rescaled by the total-weight
/// ratio so throughput workloads keep their task accounting consistent.
///
/// # Panics
///
/// Panics when `shift` is outside `(-1, 1)` (a weight would become
/// non-positive, which [`Workload::validate`] rejects).
pub fn shift_read_write(workload: &Workload, shift: f64) -> Workload {
    assert!(
        shift > -1.0 && shift < 1.0,
        "shift {shift} out of (-1, 1): weights must stay positive"
    );
    let old_total: f64 = workload.queries.iter().map(|q| q.weight).sum();
    let queries: Vec<QuerySpec> = workload
        .queries
        .iter()
        .map(|q| {
            let factor = if writes(q) { 1.0 + shift } else { 1.0 - shift };
            q.clone().with_weight(q.weight * factor)
        })
        .collect();
    let new_total: f64 = queries.iter().map(|q| q.weight).sum();
    Workload {
        name: format!("{}+rw{shift:+.2}", workload.name),
        queries,
        concurrency: workload.concurrency,
        metric: workload.metric,
        tasks_per_stream: workload.tasks_per_stream * new_total / old_total,
    }
}

/// Scale a workload's demand by `factor > 0`.
///
/// Throughput workloads scale their degree of concurrency (more identical
/// streams, never below 1); response-time workloads scale every query's
/// weight (longer streams) — in both cases `tasks_per_stream` follows, so
/// derived throughput floors and task counts stay consistent.
///
/// # Panics
///
/// Panics when `factor` is not strictly positive and finite.
pub fn scale_throughput(workload: &Workload, factor: f64) -> Workload {
    assert!(
        factor > 0.0 && factor.is_finite(),
        "scale factor {factor} must be positive and finite"
    );
    let mut drifted = workload.clone();
    drifted.name = format!("{}+x{factor:.2}", workload.name);
    match workload.metric {
        PerfMetric::Throughput => {
            let c = (workload.concurrency as f64 * factor).round().max(1.0);
            drifted.concurrency = c as u32;
        }
        PerfMetric::ResponseTime => {
            for q in &mut drifted.queries {
                q.weight *= factor;
            }
            drifted.tasks_per_stream *= factor;
        }
    }
    drifted
}

/// One query class's share of a workload's total weight, keyed by the
/// query's name (classes are merged when a workload repeats a name).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassWeight {
    /// Query-class name.
    pub class: String,
    /// The class's share of the workload's total weight, in `[0, 1]`.
    pub weight: f64,
}

/// The drift-detection fingerprint of a workload: the low-dimensional view
/// of its profile an online controller compares across observations.
///
/// Three axes capture the drifts the generators in this module produce —
/// and the ones the HTAP literature describes:
///
/// * **read/write mix** ([`write_fraction`](Self::write_fraction)): the
///   share of total query weight carried by write-bearing queries, moved
///   by [`shift_read_write`] and the analytical↔transactional phase flip;
/// * **demand** ([`tasks_per_pass`](Self::tasks_per_pass)): tasks completed
///   by one pass of all concurrent streams, moved by [`scale_throughput`];
/// * **class weights** ([`class_weights`](Self::class_weights)): the
///   normalized weight distribution over query classes, moved whenever the
///   *shape* of the mix changes (new reporting queries, a retired
///   transaction type) even at a constant read/write balance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSignature {
    /// Share of total query weight carried by write-bearing queries.
    pub write_fraction: f64,
    /// Tasks completed by one pass of the whole workload:
    /// `concurrency × tasks_per_stream`.
    pub tasks_per_pass: f64,
    /// Per-query-class weight shares, sorted by class name; shares sum
    /// to 1.
    pub class_weights: Vec<ClassWeight>,
}

/// Collapse a workload to its [`WorkloadSignature`].
pub fn signature(workload: &Workload) -> WorkloadSignature {
    let total: f64 = workload.queries.iter().map(|q| q.weight).sum();
    let write: f64 = workload
        .queries
        .iter()
        .filter(|q| writes(q))
        .map(|q| q.weight)
        .sum();
    let mut class_weights: Vec<ClassWeight> = Vec::new();
    for q in &workload.queries {
        let share = if total > 0.0 { q.weight / total } else { 0.0 };
        match class_weights.iter_mut().find(|c| c.class == q.name) {
            Some(c) => c.weight += share,
            None => class_weights.push(ClassWeight {
                class: q.name.clone(),
                weight: share,
            }),
        }
    }
    class_weights.sort_by(|a, b| a.class.cmp(&b.class));
    WorkloadSignature {
        write_fraction: if total > 0.0 { write / total } else { 0.0 },
        tasks_per_pass: workload.concurrency as f64 * workload.tasks_per_stream,
        class_weights,
    }
}

impl WorkloadSignature {
    /// Bounded profile distance in `[0, 1]`: the largest drift along any of
    /// the three axes. Each axis is itself normalized to `[0, 1]` —
    /// absolute difference for the write fraction, relative change for
    /// demand (`|a − b| / max(a, b)`), and total-variation distance for the
    /// class-weight distributions (classes absent on one side count with
    /// weight 0) — so one threshold governs all of them. The distance is
    /// symmetric, `0` exactly for identical signatures, and monotone in
    /// each generator's drift parameter (the property suite pins this).
    pub fn distance(&self, other: &WorkloadSignature) -> f64 {
        let rw = (self.write_fraction - other.write_fraction).abs();
        let peak = self.tasks_per_pass.max(other.tasks_per_pass);
        let demand = if peak > 0.0 {
            (self.tasks_per_pass - other.tasks_per_pass).abs() / peak
        } else {
            0.0
        };
        // Total variation over the merged (sorted) class lists.
        let mut variation = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < self.class_weights.len() || j < other.class_weights.len() {
            let a = self.class_weights.get(i);
            let b = other.class_weights.get(j);
            match (a, b) {
                (Some(a), Some(b)) if a.class == b.class => {
                    variation += (a.weight - b.weight).abs();
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a.class < b.class => {
                    variation += a.weight;
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    variation += b.weight;
                    j += 1;
                }
                (Some(a), None) => {
                    variation += a.weight;
                    i += 1;
                }
                (None, Some(b)) => {
                    variation += b.weight;
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        let classes = variation / 2.0;
        // Each axis is ≤ 1 by construction; the summed variation can creep
        // past it by a few ulps, so pin the documented bound exactly.
        rw.max(demand).max(classes).min(1.0)
    }
}

/// [`WorkloadSignature::distance`] between two workloads' signatures — the
/// metric the online controller thresholds on.
pub fn profile_distance(a: &Workload, b: &Workload) -> f64 {
    signature(a).distance(&signature(b))
}

/// A matched analytical→transactional drift pair over one schema: the
/// "TPC-H by day, TPC-C by night" phase flip of mixed workloads.
///
/// `analytical` is a single-stream, response-time workload of full scans
/// over every table of `schema` (reporting queries that favour cheap
/// sequential devices); `transactional` is the OLTP workload the caller
/// supplies for the *same* schema (e.g. [`crate::tpcc::workload`]), whose
/// random writes favour premium devices. Provision for the first, then
/// re-plan for the second: the recommended placements flip, and the gap
/// between them is exactly what a migration planner must bridge.
pub fn analytical_phase(schema: &Schema) -> Workload {
    let queries: Vec<QuerySpec> = schema
        .tables()
        .iter()
        .map(|t| {
            QuerySpec::read(
                &format!("report_{}", t.name),
                ReadOp::of(Rel::Scan(ScanSpec::full(t.id))).with_agg(t.rows),
            )
        })
        .collect();
    Workload::dss(&format!("{}-analytical", schema.name()), queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synth, tpcc, tpch, ycsb};

    #[test]
    fn shift_moves_weight_toward_writes_and_validates() {
        let s = synth::bench_schema(1_000_000.0, 120.0);
        let w = synth::mixed_workload(&s);
        let drifted = shift_read_write(&w, 0.5);
        drifted.validate(&s).expect("drifted workload stays valid");
        for (before, after) in w.queries.iter().zip(&drifted.queries) {
            if writes(before) {
                assert!(after.weight > before.weight, "{}", before.name);
            } else {
                assert!(after.weight < before.weight, "{}", before.name);
            }
        }
        // Negative shift drifts the other way.
        let analytical = shift_read_write(&w, -0.5);
        assert!(analytical.queries[0].weight > w.queries[0].weight);
        // The original is untouched.
        assert_eq!(w.queries[0].weight, 1.0);
    }

    #[test]
    fn shift_rescales_tasks_with_total_weight() {
        let s = tpcc::schema(2.0);
        let w = tpcc::workload(&s);
        let drifted = shift_read_write(&w, 0.3);
        let old_total: f64 = w.queries.iter().map(|q| q.weight).sum();
        let new_total: f64 = drifted.queries.iter().map(|q| q.weight).sum();
        let expect = w.tasks_per_stream * new_total / old_total;
        assert!((drifted.tasks_per_stream - expect).abs() < 1e-9);
        assert_eq!(drifted.metric, PerfMetric::Throughput);
        assert_eq!(drifted.concurrency, w.concurrency);
    }

    #[test]
    fn scale_throughput_scales_concurrency_for_oltp_and_weights_for_dss() {
        let oltp_schema = tpcc::schema(2.0);
        let oltp = tpcc::workload(&oltp_schema);
        let doubled = scale_throughput(&oltp, 2.0);
        assert_eq!(doubled.concurrency, oltp.concurrency * 2);
        assert_eq!(doubled.tasks_per_stream, oltp.tasks_per_stream);

        let dss_schema = tpch::subset_schema(1.0);
        let dss = tpch::subset_workload(&dss_schema);
        let halved = scale_throughput(&dss, 0.5);
        assert_eq!(halved.concurrency, dss.concurrency);
        assert!((halved.tasks_per_stream - dss.tasks_per_stream * 0.5).abs() < 1e-9);
        halved.validate(&dss_schema).expect("still valid");
        // Never below one stream.
        let tiny = scale_throughput(&oltp, 1e-6);
        assert_eq!(tiny.concurrency, 1);
    }

    #[test]
    fn analytical_phase_is_read_only_over_every_table() {
        let s = tpcc::schema(2.0);
        let a = analytical_phase(&s);
        assert_eq!(a.metric, PerfMetric::ResponseTime);
        assert_eq!(a.queries.len(), s.tables().len());
        assert!(a.queries.iter().all(|q| !writes(q)));
        a.validate(&s).expect("analytical phase validates");
        // The pair shares the schema with the transactional phase.
        let t = tpcc::workload(&s);
        assert_eq!(t.metric, PerfMetric::Throughput);
    }

    #[test]
    fn distance_is_zero_on_identity_and_symmetric() {
        let s = tpcc::schema(2.0);
        let w = tpcc::workload(&s);
        assert_eq!(profile_distance(&w, &w), 0.0);
        let drifted = shift_read_write(&w, 0.4);
        let ab = profile_distance(&w, &drifted);
        let ba = profile_distance(&drifted, &w);
        assert!(ab > 0.0);
        assert_eq!(ab, ba, "distance must be symmetric");
    }

    #[test]
    fn distance_is_bounded_and_monotone_in_shift() {
        let s = synth::bench_schema(1_000_000.0, 120.0);
        let w = synth::mixed_workload(&s);
        let mut last = 0.0;
        for step in 1..=9 {
            let shift = step as f64 * 0.1;
            let d = profile_distance(&w, &shift_read_write(&w, shift));
            assert!(d >= last, "shift {shift}: {d} < {last}");
            assert!((0.0..=1.0).contains(&d), "distance {d} out of [0, 1]");
            last = d;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn distance_sees_demand_scaling_and_phase_flips() {
        let s = tpcc::schema(2.0);
        let w = tpcc::workload(&s);
        // Demand axis: doubling concurrency halves-complements to 0.5.
        let doubled = scale_throughput(&w, 2.0);
        let d = profile_distance(&w, &doubled);
        assert!((d - 0.5).abs() < 1e-9, "2x demand must read 0.5, got {d}");
        // The phase flip moves every axis: disjoint classes, zero writes.
        let flip = profile_distance(&w, &analytical_phase(&s));
        assert!(flip > 0.9, "phase flip must read near 1, got {flip}");
        // A signature round-trips through serde.
        let sig = signature(&w);
        let json = serde_json::to_string(&sig).unwrap();
        let back: WorkloadSignature = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sig);
    }

    #[test]
    fn generators_cover_every_workload_family() {
        let tpch_s = tpch::subset_schema(1.0);
        let tpcc_s = tpcc::schema(1.0);
        let ycsb_s = ycsb::schema(100_000.0);
        for (schema, w) in [
            (&tpch_s, tpch::subset_workload(&tpch_s)),
            (&tpcc_s, tpcc::workload(&tpcc_s)),
            (&ycsb_s, ycsb::workload(&ycsb_s, ycsb::YcsbMix::A, 300)),
        ] {
            shift_read_write(&w, 0.4).validate(schema).unwrap();
            scale_throughput(&w, 3.0).validate(schema).unwrap();
        }
    }
}
