//! Workload and SLA specifications (§2.3, §2.4, §4.3 of the paper).

use dot_dbms::query::QuerySpec;
use dot_dbms::Schema;
use serde::{Deserialize, Serialize};

/// The performance metric a workload's SLA is expressed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerfMetric {
    /// Per-query response-time caps (the paper's TPC-H workloads).
    ResponseTime,
    /// Aggregate throughput floor in tasks/hour (the paper's TPC-C
    /// workload, where the task is a NewOrder transaction).
    Throughput,
}

/// A workload `W`: `c` identical concurrent streams of a query sequence
/// (§2.3), plus the metadata needed to evaluate its SLA and TOC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// The per-stream query sequence. Repetitions are expressed through each
    /// query's `weight`.
    pub queries: Vec<QuerySpec>,
    /// Degree of concurrency `c`: identical streams running simultaneously.
    pub concurrency: u32,
    /// SLA metric for this workload.
    pub metric: PerfMetric,
    /// Number of *tasks* completed by one pass of one stream — the unit of
    /// the paper's throughput `T(L, W)` in tasks/hour. For TPC-C this counts
    /// NewOrder transactions (the tpmC convention); for DSS it counts
    /// queries.
    pub tasks_per_stream: f64,
}

impl Workload {
    /// Build a single-stream response-time workload (DSS convention).
    pub fn dss(name: &str, queries: Vec<QuerySpec>) -> Self {
        let tasks: f64 = queries.iter().map(|q| q.weight).sum();
        Workload {
            name: name.to_owned(),
            queries,
            concurrency: 1,
            metric: PerfMetric::ResponseTime,
            tasks_per_stream: tasks,
        }
    }

    /// Build a throughput workload of `concurrency` identical streams.
    pub fn oltp(
        name: &str,
        queries: Vec<QuerySpec>,
        concurrency: u32,
        tasks_per_stream: f64,
    ) -> Self {
        Workload {
            name: name.to_owned(),
            queries,
            concurrency,
            metric: PerfMetric::Throughput,
            tasks_per_stream,
        }
    }

    /// Total queries per stream (weights included).
    pub fn queries_per_stream(&self) -> f64 {
        self.queries.iter().map(|q| q.weight).sum()
    }

    /// Convert one stream's elapsed time into workload throughput in
    /// tasks/hour: all `c` streams progress in parallel.
    pub fn throughput_tasks_per_hour(&self, stream_time_ms: f64) -> f64 {
        if stream_time_ms <= 0.0 {
            return 0.0;
        }
        let passes_per_hour = 3_600_000.0 / stream_time_ms;
        self.concurrency as f64 * self.tasks_per_stream * passes_per_hour
    }

    /// Workload execution time `t(L, W)` in hours for one pass of every
    /// stream, given one stream's elapsed time. Streams run concurrently, so
    /// a pass of the workload takes one stream-time.
    pub fn execution_hours(&self, stream_time_ms: f64) -> f64 {
        stream_time_ms / 3_600_000.0
    }

    /// Validate all queries against a schema-independent contract.
    pub fn validate(&self, _schema: &Schema) -> Result<(), String> {
        if self.queries.is_empty() {
            return Err(format!("workload {}: no queries", self.name));
        }
        if self.concurrency == 0 {
            return Err(format!("workload {}: zero concurrency", self.name));
        }
        for q in &self.queries {
            q.validate()?;
        }
        Ok(())
    }
}

/// The paper's *relative SLA* (§4.3): a layout must deliver at least
/// `ratio` of the performance achieved with all objects on the premium
/// class. `ratio = 0.5` ⇒ response times may at most double (DSS) or
/// throughput at most halve (OLTP) versus the all-H-SSD baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaSpec {
    /// The relative performance floor in `(0, 1]`.
    pub ratio: f64,
}

impl SlaSpec {
    /// Construct, validating the domain.
    pub fn relative(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "relative SLA must be in (0,1]");
        SlaSpec { ratio }
    }

    /// Response-time cap derived from a best-case time: `t_best / ratio`.
    pub fn response_cap_ms(&self, best_ms: f64) -> f64 {
        best_ms / self.ratio
    }

    /// Throughput floor derived from a best-case throughput:
    /// `T_best · ratio`.
    pub fn throughput_floor(&self, best_tasks_per_hour: f64) -> f64 {
        best_tasks_per_hour * self.ratio
    }
}

/// Fraction of queries meeting their caps — the paper's *performance
/// satisfaction ratio* (PSR, §4.3). `times` and `caps` are parallel.
pub fn performance_satisfaction_ratio(times_ms: &[f64], caps_ms: &[f64]) -> f64 {
    assert_eq!(times_ms.len(), caps_ms.len());
    if times_ms.is_empty() {
        return 1.0;
    }
    let met = times_ms
        .iter()
        .zip(caps_ms)
        .filter(|(t, cap)| *t <= *cap)
        .count();
    met as f64 / times_ms.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dot_dbms::query::{ReadOp, Rel, ScanSpec};
    use dot_dbms::TableId;

    fn q(name: &str, weight: f64) -> QuerySpec {
        QuerySpec::read(name, ReadOp::of(Rel::Scan(ScanSpec::full(TableId(0))))).with_weight(weight)
    }

    #[test]
    fn dss_counts_tasks_from_weights() {
        let w = Workload::dss("w", vec![q("a", 3.0), q("b", 2.0)]);
        assert_eq!(w.queries_per_stream(), 5.0);
        assert_eq!(w.tasks_per_stream, 5.0);
        assert_eq!(w.concurrency, 1);
        assert_eq!(w.metric, PerfMetric::ResponseTime);
    }

    #[test]
    fn throughput_math() {
        let w = Workload::oltp("o", vec![q("t", 100.0)], 300, 45.0);
        // One pass per hour per stream.
        let t = w.throughput_tasks_per_hour(3_600_000.0);
        assert!((t - 300.0 * 45.0).abs() < 1e-9);
        // Twice as fast, twice the throughput.
        assert!((w.throughput_tasks_per_hour(1_800_000.0) - 2.0 * t).abs() < 1e-9);
        assert_eq!(w.throughput_tasks_per_hour(0.0), 0.0);
    }

    #[test]
    fn execution_hours_is_stream_time() {
        let w = Workload::oltp("o", vec![q("t", 1.0)], 300, 1.0);
        assert!((w.execution_hours(7_200_000.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sla_caps_and_floors() {
        let sla = SlaSpec::relative(0.5);
        assert!((sla.response_cap_ms(100.0) - 200.0).abs() < 1e-12);
        assert!((sla.throughput_floor(1000.0) - 500.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "relative SLA")]
    fn sla_domain_enforced() {
        let _ = SlaSpec::relative(0.0);
    }

    #[test]
    fn psr_counts_met_fractions() {
        let times = [1.0, 2.0, 3.0, 4.0];
        let caps = [2.0, 2.0, 2.0, 2.0];
        assert!((performance_satisfaction_ratio(&times, &caps) - 0.5).abs() < 1e-12);
        assert_eq!(performance_satisfaction_ratio(&[], &[]), 1.0);
    }

    #[test]
    fn workload_validation() {
        let schema = dot_dbms::SchemaBuilder::new("s")
            .table("t", 10.0, 10.0)
            .build();
        let empty = Workload::dss("e", vec![]);
        assert!(empty.validate(&schema).is_err());
        let ok = Workload::dss("k", vec![q("a", 1.0)]);
        assert!(ok.validate(&schema).is_ok());
    }
}
