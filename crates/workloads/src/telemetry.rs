//! Measured workload telemetry: derive controller observations from what
//! the engine *ran*, not from what the workload *declares*.
//!
//! The drift machinery in [`crate::drift`] fingerprints a workload by its
//! declared weights — fine for scripted scenarios, but the paper's online
//! re-provisioning story (and the HTAP literature it leans on) detects
//! mix shifts from **observed execution**. This module closes that gap:
//!
//! 1. run a generated query stream through
//!    [`dot_dbms::exec::simulate_workload`] under the *currently deployed*
//!    layout ("a sample test run of the workload", §3.4);
//! 2. fold the per-query [`RunResult`] costs into a [`MeasuredProfile`];
//! 3. derive a [`WorkloadSignature`] from measured plan costs — each query
//!    class weighted by the share of stream time it actually consumed —
//!    instead of declared weights.
//!
//! Both paths sit behind one [`TelemetrySource`] trait so a controller
//! consumes scripted and measured observations interchangeably:
//! [`ScriptedSource`] reproduces the declared-signature pipeline bit for
//! bit (golden trajectories never move), while [`MeasuredSource`] feeds
//! the same control loop from simulated execution. Everything is
//! deterministic: the simulator's noise is seeded, and one seed per tick
//! is derived from the source's base seed — the same trace, seed, and
//! starting layout always produce the same observation stream.
//!
//! ```
//! use dot_dbms::Layout;
//! use dot_storage::catalog;
//! use dot_workloads::telemetry::{MeasuredSource, ScriptedSource, TelemetrySource};
//! use dot_workloads::tpcc;
//!
//! let schema = tpcc::schema(1.0);
//! let pool = catalog::box2();
//! let w = tpcc::workload(&schema);
//! let deployed = Layout::uniform(pool.most_expensive(), schema.object_count());
//!
//! // Scripted: the declared signature, exactly as `drift::signature`.
//! let mut scripted = ScriptedSource::new(vec![w.clone()]);
//! let tick = scripted.next_observation(&deployed).unwrap();
//! assert_eq!(tick.signature, dot_workloads::drift::signature(&w));
//!
//! // Measured: the signature weighs classes by measured stream-time share.
//! let mut measured = MeasuredSource::new(&schema, &pool, vec![w], 42);
//! let tick = measured.next_observation(&deployed).unwrap();
//! let profile = tick.profile.expect("measured ticks carry a profile");
//! assert!(profile.stream_time_ms > 0.0);
//! assert!(measured.next_observation(&deployed).is_none());
//! ```

use crate::drift::{self, ClassWeight, WorkloadSignature};
use crate::spec::{PerfMetric, Workload};
use dot_dbms::exec::{self, RunResult, UnknownQueryError};
use dot_dbms::{EngineConfig, Layout, Schema};
use dot_storage::StoragePool;
use serde::{Deserialize, Serialize};

/// One query class's measured behaviour within a profiled stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredQuery {
    /// Query-class name.
    pub name: String,
    /// Measured response time of one execution, ms.
    pub time_ms: f64,
    /// Repetitions within the stream.
    pub weight: f64,
    /// Whether the class bears writes (shared classification with
    /// [`drift::writes`], so declared and measured signatures agree on
    /// what counts as a write).
    pub writes: bool,
}

impl MeasuredQuery {
    /// The class's measured service demand: `time_ms × weight` — the
    /// stream time it actually consumed.
    pub fn demand_ms(&self) -> f64 {
        self.time_ms * self.weight
    }
}

/// Per-query measured plan costs of one simulated test run, folded from a
/// [`RunResult`] — the raw material a measured [`WorkloadSignature`] is
/// derived from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredProfile {
    /// Per-class measurements, in workload order.
    pub queries: Vec<MeasuredQuery>,
    /// Total measured stream time, ms (`Σ time × weight`).
    pub stream_time_ms: f64,
    /// Tasks completed by one pass of all concurrent streams (declared:
    /// `concurrency × tasks_per_stream` — a test run does not change how
    /// much work a pass represents, only how long it takes).
    pub tasks_per_pass: f64,
    /// The noise seed the run was simulated with (provenance; two profiles
    /// of one workload differ only through it).
    pub seed: u64,
}

impl MeasuredProfile {
    /// Fold a run into a profile, classifying each ran query against the
    /// workload it was generated from. A run query whose name the workload
    /// does not declare is a typed [`UnknownQueryError`] — a mismatched
    /// (workload, run) pair, never a silently misclassified class.
    pub fn from_run(
        workload: &Workload,
        run: &RunResult,
        seed: u64,
    ) -> Result<MeasuredProfile, UnknownQueryError> {
        let mut queries = Vec::with_capacity(run.queries.len());
        for q in &run.queries {
            let spec = workload
                .queries
                .iter()
                .find(|w| w.name == q.name)
                .ok_or_else(|| UnknownQueryError {
                    name: q.name.clone(),
                    known: workload.queries.iter().map(|w| w.name.clone()).collect(),
                })?;
            queries.push(MeasuredQuery {
                name: q.name.clone(),
                time_ms: q.time_ms,
                weight: q.weight,
                writes: drift::writes(spec),
            });
        }
        Ok(MeasuredProfile {
            queries,
            stream_time_ms: run.stream_time_ms,
            tasks_per_pass: workload.concurrency as f64 * workload.tasks_per_stream,
            seed,
        })
    }

    /// The measured drift-detection signature: class weights are each
    /// class's share of *measured stream time* (service demand), and the
    /// write fraction is the demand share of write-bearing classes —
    /// versus [`drift::signature`], which uses declared weights. A class
    /// that got cheap under the deployed layout shrinks in the measured
    /// signature even at constant declared weight; that is the point.
    pub fn signature(&self) -> WorkloadSignature {
        let total: f64 = self.queries.iter().map(MeasuredQuery::demand_ms).sum();
        let write: f64 = self
            .queries
            .iter()
            .filter(|q| q.writes)
            .map(MeasuredQuery::demand_ms)
            .sum();
        let mut class_weights: Vec<ClassWeight> = Vec::new();
        for q in &self.queries {
            let share = if total > 0.0 {
                q.demand_ms() / total
            } else {
                0.0
            };
            match class_weights.iter_mut().find(|c| c.class == q.name) {
                Some(c) => c.weight += share,
                None => class_weights.push(ClassWeight {
                    class: q.name.clone(),
                    weight: share,
                }),
            }
        }
        class_weights.sort_by(|a, b| a.class.cmp(&b.class));
        WorkloadSignature {
            write_fraction: if total > 0.0 { write / total } else { 0.0 },
            tasks_per_pass: self.tasks_per_pass,
            class_weights,
        }
    }
}

/// One telemetry observation: the workload the controller's advisor
/// session opens over, the signature drift is scored with, and — for
/// measured sources — the profile the signature was derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryTick {
    /// The observed workload (what the replan, if triggered, plans for).
    pub workload: Workload,
    /// The signature the controller scores drift with.
    pub signature: WorkloadSignature,
    /// The measured profile behind the signature (`None` for scripted
    /// sources, whose signature is declared).
    pub profile: Option<MeasuredProfile>,
}

/// A stream of controller observations. The controller passes the layout
/// it currently has deployed, so measured sources profile execution under
/// the layout actually serving the workload — including every layout the
/// loop itself migrates to mid-stream.
pub trait TelemetrySource {
    /// Advance one tick; `None` ends the stream.
    fn next_observation(&mut self, deployed: &Layout) -> Option<TelemetryTick>;
}

/// The scripted source: replays a workload sequence with *declared*
/// signatures, reproducing [`drift::signature`]-based control bit for bit
/// (the golden-trajectory contract).
#[derive(Debug, Clone)]
pub struct ScriptedSource {
    sequence: std::vec::IntoIter<Workload>,
}

impl ScriptedSource {
    /// A source replaying `sequence` in order.
    pub fn new(sequence: Vec<Workload>) -> ScriptedSource {
        ScriptedSource {
            sequence: sequence.into_iter(),
        }
    }
}

impl TelemetrySource for ScriptedSource {
    fn next_observation(&mut self, _deployed: &Layout) -> Option<TelemetryTick> {
        let workload = self.sequence.next()?;
        let signature = drift::signature(&workload);
        Some(TelemetryTick {
            signature,
            profile: None,
            workload,
        })
    }
}

/// The measured source: each tick simulates its workload's query stream
/// under the currently deployed layout and derives the signature from the
/// measured plan costs. Deterministic per (sequence, base seed, layout
/// history): tick `t` simulates with seed `base_seed + t`.
#[derive(Debug, Clone)]
pub struct MeasuredSource {
    schema: Schema,
    pool: StoragePool,
    engine: Option<EngineConfig>,
    base_seed: u64,
    tick: u64,
    sequence: std::vec::IntoIter<Workload>,
}

impl MeasuredSource {
    /// A source simulating `sequence` in order with noise seeds derived
    /// from `seed`. The engine configuration defaults per workload metric
    /// (DSS for response time, OLTP for throughput), exactly as an advisor
    /// session picks it.
    pub fn new(
        schema: &Schema,
        pool: &StoragePool,
        sequence: Vec<Workload>,
        seed: u64,
    ) -> MeasuredSource {
        MeasuredSource {
            schema: schema.clone(),
            pool: pool.clone(),
            engine: None,
            base_seed: seed,
            tick: 0,
            sequence: sequence.into_iter(),
        }
    }

    /// Force one engine configuration on every simulation (the default
    /// picks per workload metric).
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = Some(engine);
        self
    }

    fn engine_for(&self, workload: &Workload) -> EngineConfig {
        self.engine.unwrap_or(match workload.metric {
            PerfMetric::ResponseTime => EngineConfig::dss(),
            PerfMetric::Throughput => EngineConfig::oltp(),
        })
    }

    /// Measure one workload under a layout with an explicit seed, without
    /// advancing the source. This is how a session obtains its *measured
    /// baseline* signature before opening a controller: a measured
    /// observation scored against a declared baseline would read spurious
    /// drift on a perfectly quiet stream, because the two weighting
    /// schemes differ even on identical workloads.
    pub fn measure(&self, workload: &Workload, deployed: &Layout, seed: u64) -> MeasuredProfile {
        let cfg = self.engine_for(workload);
        let run = exec::simulate_workload(
            &workload.queries,
            &self.schema,
            deployed,
            &self.pool,
            &cfg,
            seed,
        );
        MeasuredProfile::from_run(workload, &run, seed)
            .expect("a run simulated from this workload declares every query")
    }
}

impl TelemetrySource for MeasuredSource {
    fn next_observation(&mut self, deployed: &Layout) -> Option<TelemetryTick> {
        let workload = self.sequence.next()?;
        let seed = self.base_seed.wrapping_add(self.tick);
        self.tick += 1;
        let profile = self.measure(&workload, deployed, seed);
        Some(TelemetryTick {
            signature: profile.signature(),
            profile: Some(profile),
            workload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synth, tpcc};
    use dot_storage::catalog;

    fn setup() -> (Schema, StoragePool, Workload, Layout) {
        let schema = synth::bench_schema(1_000_000.0, 120.0);
        let pool = catalog::box2();
        let w = synth::mixed_workload(&schema);
        let deployed = Layout::uniform(pool.most_expensive(), schema.object_count());
        (schema, pool, w, deployed)
    }

    #[test]
    fn scripted_source_reproduces_declared_signatures() {
        let (schema, _, w, deployed) = setup();
        let seq = vec![
            w.clone(),
            drift::shift_read_write(&w, 0.3),
            drift::analytical_phase(&schema),
        ];
        let mut source = ScriptedSource::new(seq.clone());
        for expected in &seq {
            let tick = source.next_observation(&deployed).expect("scripted tick");
            assert_eq!(&tick.workload, expected);
            assert_eq!(tick.signature, drift::signature(expected));
            assert!(tick.profile.is_none());
        }
        assert!(source.next_observation(&deployed).is_none());
    }

    #[test]
    fn measured_profile_folds_the_run_and_classifies_writes() {
        let (schema, pool, w, deployed) = setup();
        let cfg = EngineConfig::dss();
        let run = exec::simulate_workload(&w.queries, &schema, &deployed, &pool, &cfg, 5);
        let profile = MeasuredProfile::from_run(&w, &run, 5).expect("matched run");
        assert_eq!(profile.queries.len(), w.queries.len());
        for (m, q) in profile.queries.iter().zip(&w.queries) {
            assert_eq!(m.name, q.name);
            assert_eq!(m.weight, q.weight);
            assert_eq!(m.writes, drift::writes(q));
        }
        assert_eq!(profile.stream_time_ms, run.stream_time_ms);
        assert_eq!(
            profile.tasks_per_pass,
            w.concurrency as f64 * w.tasks_per_stream
        );
        // The profile round-trips through serde (supervision reports may
        // carry it).
        let json = serde_json::to_string(&profile).unwrap();
        let back: MeasuredProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn mismatched_run_is_a_typed_error() {
        let (schema, pool, w, deployed) = setup();
        let cfg = EngineConfig::dss();
        let run = exec::simulate_workload(&w.queries, &schema, &deployed, &pool, &cfg, 5);
        let other = drift::analytical_phase(&schema);
        let err = MeasuredProfile::from_run(&other, &run, 5).unwrap_err();
        assert!(other.queries.iter().all(|q| q.name != err.name));
        assert_eq!(
            err.known,
            other
                .queries
                .iter()
                .map(|q| q.name.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn measured_signature_weighs_classes_by_stream_time_share() {
        let (schema, pool, w, deployed) = setup();
        let mut source = MeasuredSource::new(&schema, &pool, vec![w.clone()], 9);
        let tick = source.next_observation(&deployed).expect("measured tick");
        let profile = tick.profile.expect("profile present");
        let sig = tick.signature;
        // Shares sum to one and match the demand fold.
        let sum: f64 = sig.class_weights.iter().map(|c| c.weight).sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        let total: f64 = profile.queries.iter().map(MeasuredQuery::demand_ms).sum();
        for c in &sig.class_weights {
            let demand: f64 = profile
                .queries
                .iter()
                .filter(|q| q.name == c.class)
                .map(MeasuredQuery::demand_ms)
                .sum();
            assert!((c.weight - demand / total).abs() < 1e-12, "{}", c.class);
        }
        assert!((0.0..=1.0).contains(&sig.write_fraction));
        // Measured and declared weighting genuinely differ: the seq-scan
        // class is slow per execution, so its measured share exceeds its
        // declared share.
        let declared = drift::signature(&w);
        assert_ne!(
            sig.class_weights, declared.class_weights,
            "measured shares must reweigh the declared mix"
        );
        // Demand axis stays declared.
        assert_eq!(sig.tasks_per_pass, declared.tasks_per_pass);
    }

    #[test]
    fn measured_source_is_deterministic_and_layout_sensitive() {
        let (schema, pool, w, premium) = setup();
        let seq = vec![w.clone(), w.clone()];
        let run = |layout: &Layout| {
            let mut s = MeasuredSource::new(&schema, &pool, seq.clone(), 77);
            let mut ticks = Vec::new();
            while let Some(t) = s.next_observation(layout) {
                ticks.push(t);
            }
            ticks
        };
        // Same seed, same layout: bit-identical observation stream.
        assert_eq!(run(&premium), run(&premium));
        // Consecutive ticks use distinct seeds, so their noise differs.
        let ticks = run(&premium);
        assert_ne!(
            ticks[0].profile.as_ref().unwrap().stream_time_ms,
            ticks[1].profile.as_ref().unwrap().stream_time_ms
        );
        // A cheaper layout changes measured times — the deployed layout is
        // part of the measurement, which is what lets the control loop see
        // its own migrations.
        let hdd = Layout::uniform(
            pool.class_by_name("HDD").expect("box2 has an HDD tier").id,
            schema.object_count(),
        );
        assert_ne!(
            run(&premium)[0].profile.as_ref().unwrap().stream_time_ms,
            run(&hdd)[0].profile.as_ref().unwrap().stream_time_ms
        );
    }

    #[test]
    fn measured_baseline_is_quiet_against_its_own_measurement() {
        // The motivating contract of `measure`: scoring a measured
        // observation against the measured baseline of the same workload,
        // layout, and seed reads zero drift.
        let schema = tpcc::schema(1.0);
        let pool = catalog::box2();
        let w = tpcc::workload(&schema);
        let deployed = Layout::uniform(pool.most_expensive(), schema.object_count());
        let source = MeasuredSource::new(&schema, &pool, Vec::new(), 3);
        let baseline = source.measure(&w, &deployed, 3).signature();
        let again = source.measure(&w, &deployed, 3).signature();
        assert_eq!(baseline.distance(&again), 0.0);
        // A different noise seed moves the measured mix a little, but far
        // less than a real drift would.
        let noisy = source.measure(&w, &deployed, 4).signature();
        let wobble = baseline.distance(&noisy);
        assert!(wobble < 0.05, "noise wobble {wobble} should be small");
    }
}
