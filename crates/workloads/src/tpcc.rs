//! TPC-C-derived OLTP workload (§4.5 of the paper).
//!
//! The paper drives a 30 GB, 300-warehouse TPC-C database through DBT-2 with
//! 300 connections, 1 terminal/warehouse and no think time, reporting
//! NewOrder throughput (tpmC) and TOC. We model the nine-table schema, the
//! two secondary indices the paper's Table 3 places (`i_customer`,
//! `i_orders`), and the five standard transactions at the standard
//! 45/43/4/4/4 mix. Transactions are sequences of point reads (through
//! indices), in-place updates and inserts — random-I/O-dominated regardless
//! of placement, which is why the paper profiles TPC-C on a single baseline
//! layout (§4.5.1).

use crate::spec::Workload;
use dot_dbms::query::{InsertOp, Op, QuerySpec, ReadOp, Rel, ScanSpec, UpdateOp};
use dot_dbms::{IndexId, Schema, SchemaBuilder, TableId};

/// Standard TPC-C transaction mix percentages (NewOrder, Payment,
/// OrderStatus, Delivery, StockLevel).
pub const MIX: [(&str, f64); 5] = [
    ("NewOrder", 45.0),
    ("Payment", 43.0),
    ("OrderStatus", 4.0),
    ("Delivery", 4.0),
    ("StockLevel", 4.0),
];

/// Build the TPC-C schema at the given warehouse count. The paper's
/// experiments use `warehouses = 300` (~30 GB). Nineteen placeable objects:
/// nine tables, eight primary indices (history has none, matching DBT-2) and
/// the two secondaries of Table 3.
pub fn schema(warehouses: f64) -> Schema {
    assert!(warehouses > 0.0);
    let w = warehouses;
    SchemaBuilder::new("tpcc")
        .clustered_by_default(false)
        .table("warehouse", w, 89.0)
        .primary_index(4.0)
        .table("district", 10.0 * w, 95.0)
        .primary_index(8.0)
        .table("customer", 30_000.0 * w, 655.0)
        .primary_index(12.0)
        .index("i_customer", 20.0)
        .table("history", 30_000.0 * w, 46.0)
        .table("orders", 30_000.0 * w, 24.0)
        .primary_index(12.0)
        .index("i_orders", 16.0)
        .table("new_order", 9_000.0 * w, 8.0)
        .primary_index(12.0)
        .table("order_line", 300_000.0 * w, 54.0)
        .primary_index(16.0)
        .table("item", 100_000.0, 82.0)
        .primary_index(4.0)
        .table("stock", 100_000.0 * w, 306.0)
        .primary_index(8.0)
        .build()
}

/// Handles into the TPC-C schema.
struct C {
    warehouse: (TableId, IndexId),
    district: (TableId, IndexId),
    customer: (TableId, IndexId),
    i_customer: IndexId,
    history: TableId,
    orders: (TableId, IndexId),
    i_orders: IndexId,
    new_order: (TableId, IndexId),
    order_line: (TableId, IndexId),
    item: (TableId, IndexId),
    stock: (TableId, IndexId),
    rows: RowCounts,
}

struct RowCounts {
    warehouse: f64,
    district: f64,
    customer: f64,
    orders: f64,
    new_order: f64,
    order_line: f64,
    item: f64,
    stock: f64,
}

impl C {
    fn resolve(s: &Schema) -> C {
        let t = |n: &str| {
            s.table_by_name(n)
                .unwrap_or_else(|| panic!("tpcc table {n}"))
        };
        let pk = |n: &str| {
            s.index_by_name(&format!("{n}_pkey"))
                .unwrap_or_else(|| panic!("tpcc index {n}_pkey"))
                .id
        };
        let idx = |n: &str| {
            s.index_by_name(n)
                .unwrap_or_else(|| panic!("tpcc index {n}"))
                .id
        };
        C {
            warehouse: (t("warehouse").id, pk("warehouse")),
            district: (t("district").id, pk("district")),
            customer: (t("customer").id, pk("customer")),
            i_customer: idx("i_customer"),
            history: t("history").id,
            orders: (t("orders").id, pk("orders")),
            i_orders: idx("i_orders"),
            new_order: (t("new_order").id, pk("new_order")),
            order_line: (t("order_line").id, pk("order_line")),
            item: (t("item").id, pk("item")),
            stock: (t("stock").id, pk("stock")),
            rows: RowCounts {
                warehouse: t("warehouse").rows,
                district: t("district").rows,
                customer: t("customer").rows,
                orders: t("orders").rows,
                new_order: t("new_order").rows,
                order_line: t("order_line").rows,
                item: t("item").rows,
                stock: t("stock").rows,
            },
        }
    }
}

/// Point read of `k` rows through an index.
fn point_read((table, _pk): (TableId, IndexId), via: IndexId, rows: f64, k: f64) -> Op {
    let sel = (k / rows).min(1.0);
    Op::Read(ReadOp::of(Rel::Scan(ScanSpec {
        table,
        selectivity: sel,
        index: Some(via),
        index_selectivity: sel,
    })))
}

/// In-place update of `k` rows located through `via` (or already at hand).
fn update(table: TableId, via: Option<IndexId>, k: f64) -> Op {
    Op::Update(UpdateOp {
        table,
        rows: k,
        via,
        updates_indexed_key: false,
    })
}

/// Sequential-key insert of `k` rows.
fn insert(table: TableId, k: f64) -> Op {
    Op::Insert(InsertOp {
        table,
        rows: k,
        sequential_keys: true,
    })
}

/// The NewOrder transaction: the tpmC-counted task.
pub fn new_order(s: &Schema) -> QuerySpec {
    let c = C::resolve(s);
    QuerySpec::transaction(
        "NewOrder",
        vec![
            point_read(c.warehouse, c.warehouse.1, c.rows.warehouse, 1.0),
            point_read(c.district, c.district.1, c.rows.district, 1.0),
            update(c.district.0, None, 1.0),
            point_read(c.customer, c.customer.1, c.rows.customer, 1.0),
            point_read(c.item, c.item.1, c.rows.item, 10.0),
            point_read(c.stock, c.stock.1, c.rows.stock, 10.0),
            update(c.stock.0, None, 10.0),
            insert(c.orders.0, 1.0),
            insert(c.new_order.0, 1.0),
            insert(c.order_line.0, 10.0),
        ],
    )
}

/// The Payment transaction.
pub fn payment(s: &Schema) -> QuerySpec {
    let c = C::resolve(s);
    QuerySpec::transaction(
        "Payment",
        vec![
            point_read(c.warehouse, c.warehouse.1, c.rows.warehouse, 1.0),
            update(c.warehouse.0, None, 1.0),
            point_read(c.district, c.district.1, c.rows.district, 1.0),
            update(c.district.0, None, 1.0),
            // 60% of lookups are by last name through i_customer.
            point_read(c.customer, c.i_customer, c.rows.customer, 2.0),
            update(c.customer.0, None, 1.0),
            insert(c.history, 1.0),
        ],
    )
}

/// The OrderStatus transaction (read-only).
pub fn order_status(s: &Schema) -> QuerySpec {
    let c = C::resolve(s);
    QuerySpec::transaction(
        "OrderStatus",
        vec![
            point_read(c.customer, c.i_customer, c.rows.customer, 2.0),
            point_read(c.orders, c.i_orders, c.rows.orders, 1.0),
            point_read(c.order_line, c.order_line.1, c.rows.order_line, 10.0),
        ],
    )
}

/// The Delivery transaction (one batch delivering ten districts' orders).
pub fn delivery(s: &Schema) -> QuerySpec {
    let c = C::resolve(s);
    QuerySpec::transaction(
        "Delivery",
        vec![
            point_read(c.new_order, c.new_order.1, c.rows.new_order, 10.0),
            update(c.new_order.0, None, 10.0), // delete, modelled as update
            update(c.orders.0, Some(c.orders.1), 10.0),
            point_read(c.order_line, c.order_line.1, c.rows.order_line, 100.0),
            update(c.order_line.0, None, 100.0),
            update(c.customer.0, Some(c.customer.1), 10.0),
        ],
    )
}

/// The StockLevel transaction (read-only).
pub fn stock_level(s: &Schema) -> QuerySpec {
    let c = C::resolve(s);
    QuerySpec::transaction(
        "StockLevel",
        vec![
            point_read(c.district, c.district.1, c.rows.district, 1.0),
            point_read(c.order_line, c.order_line.1, c.rows.order_line, 200.0),
            point_read(c.stock, c.stock.1, c.rows.stock, 200.0),
        ],
    )
}

/// The full TPC-C workload at the paper's parameters: 300 concurrent
/// streams, standard mix, NewOrder as the counted task. One stream pass
/// executes 100 transactions in mix proportion.
pub fn workload(s: &Schema) -> Workload {
    workload_with_concurrency(s, 300)
}

/// TPC-C workload with an explicit connection count.
pub fn workload_with_concurrency(s: &Schema, concurrency: u32) -> Workload {
    type TxnBuilder = fn(&Schema) -> QuerySpec;
    let builders: [(&str, TxnBuilder); 5] = [
        ("NewOrder", new_order),
        ("Payment", payment),
        ("OrderStatus", order_status),
        ("Delivery", delivery),
        ("StockLevel", stock_level),
    ];
    let queries: Vec<QuerySpec> = builders
        .iter()
        .map(|(name, f)| {
            let weight = MIX.iter().find(|(n, _)| n == name).expect("mix entry").1;
            f(s).with_weight(weight)
        })
        .collect();
    let neworder_per_pass = MIX[0].1;
    Workload::oltp("tpcc", queries, concurrency, neworder_per_pass)
}

/// tpmC — NewOrder transactions per minute — from one stream's pass time.
pub fn tpmc(w: &Workload, stream_time_ms: f64) -> f64 {
    w.throughput_tasks_per_hour(stream_time_ms) / 60.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dot_dbms::{exec, EngineConfig, Layout};
    use dot_storage::{catalog, IoType};

    #[test]
    fn schema_matches_paper_shape() {
        let s = schema(300.0);
        assert_eq!(s.tables().len(), 9);
        // 8 pkeys (no history pkey) + i_customer + i_orders.
        assert_eq!(s.indexes().len(), 10);
        assert_eq!(s.object_count(), 19);
        let gb = s.total_size_gb();
        assert!(gb > 22.0 && gb < 40.0, "total {gb} GB");
        assert!(s.index_by_name("history_pkey").is_none());
        assert!(s.index_by_name("i_customer").is_some());
        assert!(s.index_by_name("i_orders").is_some());
    }

    #[test]
    fn all_five_transactions_validate() {
        let s = schema(10.0);
        for q in [
            new_order(&s),
            payment(&s),
            order_status(&s),
            delivery(&s),
            stock_level(&s),
        ] {
            q.validate().unwrap_or_else(|e| panic!("{}: {e}", q.name));
        }
    }

    #[test]
    fn workload_mix_sums_to_100() {
        let s = schema(10.0);
        let w = workload(&s);
        assert_eq!(w.queries.len(), 5);
        assert_eq!(w.queries_per_stream(), 100.0);
        assert_eq!(w.concurrency, 300);
        assert_eq!(w.tasks_per_stream, 45.0);
    }

    #[test]
    fn tpcc_is_random_io_dominated_everywhere() {
        // §4.5.1: "most I/O patterns in the TPC-C workload are random
        // accesses, even when all the data objects are placed on the HDD".
        // Random operations outnumber sequential reads (the only sequential
        // reads left are scans of the page-sized warehouse/district tables),
        // and random I/O utterly dominates the I/O *time*.
        let s = schema(300.0);
        let pool = catalog::box2();
        let w = workload(&s);
        let cfg = EngineConfig::oltp();
        for class in ["HDD", "H-SSD"] {
            let sc = pool.class_by_name(class).unwrap();
            let layout = Layout::uniform(sc.id, s.object_count());
            let r = exec::estimate_workload(&w.queries, &s, &layout, &pool, &cfg);
            let io = r.cost.total_io();
            let random = io[IoType::RandRead] + io[IoType::RandWrite];
            let seq_reads = io[IoType::SeqRead];
            assert!(
                random > seq_reads,
                "{class}: random {random} vs seq reads {seq_reads}"
            );
            let t = |ty: IoType| io[ty] * sc.profile.latency_ms(ty, cfg.concurrency);
            let random_ms = t(IoType::RandRead) + t(IoType::RandWrite);
            let seq_ms = t(IoType::SeqRead) + t(IoType::SeqWrite);
            assert!(
                random_ms > 5.0 * seq_ms,
                "{class}: random {random_ms} ms vs seq {seq_ms} ms"
            );
        }
    }

    #[test]
    fn big_table_plans_do_not_change_across_layouts() {
        // The paper's pruning argument (§4.5.1): TPC-C point accesses keep
        // the same plans wherever the data sits, so one baseline layout
        // suffices for profiling. Page-sized tables (warehouse, district)
        // may legitimately flip between a trivial scan and an index probe;
        // every access to a table of real size must stay an index scan on
        // every layout.
        use dot_dbms::plan::AccessPath;
        let s = schema(50.0);
        let pool = catalog::box2();
        let w = workload(&s);
        let cfg = EngineConfig::oltp();
        for class in ["HDD", "L-SSD RAID 0", "H-SSD"] {
            let layout = Layout::uniform(pool.class_by_name(class).unwrap().id, s.object_count());
            let planned = dot_dbms::planner::plan_workload(&w.queries, &s, &layout, &pool, &cfg);
            for p in &planned {
                for &(tid, path) in &p.access_paths {
                    if s.table(tid).pages() > 100.0 {
                        assert!(
                            matches!(path, AccessPath::IndexScan(_)),
                            "{class}/{}: table {} seq-scanned",
                            p.name,
                            s.table(tid).name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tpmc_conversion() {
        let s = schema(10.0);
        let w = workload(&s);
        // One pass per minute per stream → 45 NewOrders × 300 streams / min.
        let t = tpmc(&w, 60_000.0);
        assert!((t - 45.0 * 300.0).abs() < 1e-6);
    }

    #[test]
    fn faster_storage_yields_higher_tpmc() {
        let s = schema(300.0);
        let pool = catalog::box2();
        let w = workload(&s);
        let cfg = EngineConfig::oltp();
        let t = |class: &str| {
            let layout = Layout::uniform(pool.class_by_name(class).unwrap().id, s.object_count());
            let r = exec::estimate_workload(&w.queries, &s, &layout, &pool, &cfg);
            tpmc(&w, r.stream_time_ms)
        };
        assert!(t("H-SSD") > 3.0 * t("HDD"));
    }
}
