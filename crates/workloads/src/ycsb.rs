//! YCSB-style synthetic key-value workloads.
//!
//! Not part of the paper's evaluation, but the natural "cloud workload"
//! companion for a provisioning advisor (the paper's introduction motivates
//! exactly this setting): one large user table accessed by a mix of point
//! reads, updates, inserts and short scans. The standard workload letters
//! map onto mixes as in the YCSB paper (Cooper et al., SoCC'10).

use crate::spec::Workload;
use dot_dbms::query::{InsertOp, Op, QuerySpec, ReadOp, Rel, ScanSpec, UpdateOp};
use dot_dbms::{Schema, SchemaBuilder};
use serde::{Deserialize, Serialize};

/// The standard YCSB core workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum YcsbMix {
    /// Workload A: update heavy — 50% reads, 50% updates.
    A,
    /// Workload B: read mostly — 95% reads, 5% updates.
    B,
    /// Workload C: read only.
    C,
    /// Workload D: read latest — 95% reads, 5% inserts.
    D,
    /// Workload E: short ranges — 95% scans, 5% inserts.
    E,
    /// Workload F: read-modify-write — 50% reads, 50% RMW.
    F,
}

impl YcsbMix {
    /// `(reads, updates, inserts, scans)` shares out of 100 operations.
    pub fn shares(self) -> (f64, f64, f64, f64) {
        match self {
            YcsbMix::A => (50.0, 50.0, 0.0, 0.0),
            YcsbMix::B => (95.0, 5.0, 0.0, 0.0),
            YcsbMix::C => (100.0, 0.0, 0.0, 0.0),
            YcsbMix::D => (95.0, 0.0, 5.0, 0.0),
            YcsbMix::E => (0.0, 0.0, 5.0, 95.0),
            YcsbMix::F => (50.0, 50.0, 0.0, 0.0),
        }
    }

    /// Workload letter.
    pub fn letter(self) -> char {
        match self {
            YcsbMix::A => 'A',
            YcsbMix::B => 'B',
            YcsbMix::C => 'C',
            YcsbMix::D => 'D',
            YcsbMix::E => 'E',
            YcsbMix::F => 'F',
        }
    }
}

/// Build the single-table YCSB schema: `usertable` with a primary index.
/// `records` rows of 1 KB payload (the YCSB default: 10 fields x 100 B).
pub fn schema(records: f64) -> Schema {
    assert!(records > 0.0);
    // YCSB keys are inserted in key order, so the heap stays correlated
    // with the primary index: range scans through the pkey are sequential.
    SchemaBuilder::new("ycsb")
        .clustered_by_default(true)
        .table("usertable", records, 1000.0)
        .primary_index(23.0) // "user" + 19-digit key
        .build()
}

/// Build a YCSB workload over `schema` at the given concurrency. One stream
/// pass performs 100 operations in mix proportion (scans touch
/// `scan_len` consecutive records).
pub fn workload(s: &Schema, mix: YcsbMix, concurrency: u32) -> Workload {
    let table = s.table_by_name("usertable").expect("ycsb schema");
    let pk = s.index_by_name("usertable_pkey").expect("ycsb schema").id;
    let (reads, updates, inserts, scans) = mix.shares();
    let scan_len = 50.0;
    let mut queries = Vec::new();
    let point = |k: f64| -> ReadOp {
        let sel = (k / table.rows).min(1.0);
        ReadOp::of(Rel::Scan(ScanSpec {
            table: table.id,
            selectivity: sel,
            index: Some(pk),
            index_selectivity: sel,
        }))
    };
    if reads > 0.0 {
        queries.push(QuerySpec::read("read", point(1.0)).with_weight(reads));
    }
    if updates > 0.0 {
        queries.push(
            QuerySpec::transaction(
                "update",
                vec![Op::Update(UpdateOp {
                    table: table.id,
                    rows: 1.0,
                    via: Some(pk),
                    updates_indexed_key: false,
                })],
            )
            .with_weight(updates),
        );
    }
    if inserts > 0.0 {
        queries.push(
            QuerySpec::transaction(
                "insert",
                vec![Op::Insert(InsertOp {
                    table: table.id,
                    rows: 1.0,
                    sequential_keys: true,
                })],
            )
            .with_weight(inserts),
        );
    }
    if scans > 0.0 {
        queries.push(QuerySpec::read("scan", point(scan_len)).with_weight(scans));
    }
    let tasks = 100.0;
    Workload::oltp(
        &format!("ycsb-{}", mix.letter()),
        queries,
        concurrency,
        tasks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dot_dbms::{exec, EngineConfig, Layout};
    use dot_storage::{catalog, IoType};

    #[test]
    fn shares_sum_to_100() {
        for mix in [
            YcsbMix::A,
            YcsbMix::B,
            YcsbMix::C,
            YcsbMix::D,
            YcsbMix::E,
            YcsbMix::F,
        ] {
            let (r, u, i, s) = mix.shares();
            assert!((r + u + i + s - 100.0).abs() < 1e-9, "{mix:?}");
        }
    }

    #[test]
    fn workloads_validate_and_weights_match_mix() {
        let s = schema(10_000_000.0);
        for mix in [
            YcsbMix::A,
            YcsbMix::B,
            YcsbMix::C,
            YcsbMix::D,
            YcsbMix::E,
            YcsbMix::F,
        ] {
            let w = workload(&s, mix, 100);
            w.validate(&s).unwrap();
            assert!((w.queries_per_stream() - 100.0).abs() < 1e-9, "{mix:?}");
        }
    }

    #[test]
    fn workload_a_is_write_heavy_workload_c_is_not() {
        let s = schema(10_000_000.0);
        let pool = catalog::box2();
        let layout = Layout::uniform(pool.most_expensive(), s.object_count());
        let cfg = EngineConfig::oltp();
        let io = |mix: YcsbMix| {
            let w = workload(&s, mix, 300);
            exec::estimate_workload(&w.queries, &s, &layout, &pool, &cfg)
                .cost
                .total_io()
        };
        let a = io(YcsbMix::A);
        let c = io(YcsbMix::C);
        assert!(a[IoType::RandWrite] > 0.0);
        assert_eq!(c[IoType::RandWrite], 0.0);
        assert!(c[IoType::RandRead] > 0.0);
    }

    #[test]
    fn faster_storage_helps_point_workloads_more_than_scan_workloads() {
        let s = schema(10_000_000.0);
        let pool = catalog::box2();
        let cfg = EngineConfig::oltp();
        let time_on = |mix: YcsbMix, class: &str| {
            let layout = Layout::uniform(pool.class_by_name(class).unwrap().id, s.object_count());
            let w = workload(&s, mix, 300);
            exec::estimate_workload(&w.queries, &s, &layout, &pool, &cfg).stream_time_ms
        };
        let c_gain = time_on(YcsbMix::C, "HDD") / time_on(YcsbMix::C, "H-SSD");
        let e_gain = time_on(YcsbMix::E, "HDD") / time_on(YcsbMix::E, "H-SSD");
        // Point reads (C) benefit from the H-SSD far more than the
        // scan-flavoured E mix does.
        assert!(c_gain > e_gain, "C {c_gain:.1}x vs E {e_gain:.1}x");
    }
}
