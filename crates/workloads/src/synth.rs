//! Synthetic micro-workloads for tests, benchmarks, and the device
//! calibration harness (Table 1's SR/RR/SW/RW microbenchmarks, §3.5.1).

use crate::spec::Workload;
use dot_dbms::query::{InsertOp, Op, QuerySpec, ReadOp, Rel, ScanSpec, UpdateOp};
use dot_dbms::{Schema, SchemaBuilder};

/// A single-table schema sized to `rows` rows of `row_bytes` bytes, with a
/// primary index — the paper's per-thread benchmark table `A_i` (§3.5.1).
pub fn bench_schema(rows: f64, row_bytes: f64) -> Schema {
    SchemaBuilder::new("synth")
        .table("a", rows, row_bytes)
        .primary_index(8.0)
        .build()
}

/// `select count(*) from A` — pure sequential read.
pub fn seq_read_query(s: &Schema) -> QuerySpec {
    let t = s.table_by_name("a").expect("synth schema").id;
    QuerySpec::read("SR", ReadOp::of(Rel::Scan(ScanSpec::full(t))))
}

/// `select count(*) from A where id = ?` repeated `probes` times — pure
/// random read through the primary index.
pub fn rand_read_query(s: &Schema, probes: f64) -> QuerySpec {
    let t = s.table_by_name("a").expect("synth schema");
    let pk = s.index_by_name("a_pkey").expect("synth schema").id;
    let sel = (probes / t.rows).min(1.0);
    QuerySpec::read(
        "RR",
        ReadOp::of(Rel::Scan(ScanSpec {
            table: t.id,
            selectivity: sel,
            index: Some(pk),
            index_selectivity: sel,
        })),
    )
}

/// `insert into A ...` of `rows` rows — sequential write.
pub fn seq_write_query(s: &Schema, rows: f64) -> QuerySpec {
    let t = s.table_by_name("a").expect("synth schema").id;
    QuerySpec::transaction(
        "SW",
        vec![Op::Insert(InsertOp {
            table: t,
            rows,
            sequential_keys: true,
        })],
    )
}

/// `update A set a = ? where id = ?` of `rows` rows — random read + random
/// write, exactly the paper's RW calibration shape.
pub fn rand_write_query(s: &Schema, rows: f64) -> QuerySpec {
    let t = s.table_by_name("a").expect("synth schema").id;
    let pk = s.index_by_name("a_pkey").expect("synth schema").id;
    QuerySpec::transaction(
        "RW",
        vec![Op::Update(UpdateOp {
            table: t,
            rows,
            via: Some(pk),
            updates_indexed_key: false,
        })],
    )
}

/// A balanced mixed workload touching all four patterns.
pub fn mixed_workload(s: &Schema) -> Workload {
    Workload::dss(
        "synth-mixed",
        vec![
            seq_read_query(s),
            rand_read_query(s, 1000.0),
            seq_write_query(s, 1000.0),
            rand_write_query(s, 1000.0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dot_dbms::{exec, EngineConfig, Layout};
    use dot_storage::{catalog, IoType};

    #[test]
    fn queries_produce_their_nominal_patterns() {
        let s = bench_schema(1_000_000.0, 120.0);
        let pool = catalog::box2();
        let hssd = pool.class_by_name("H-SSD").unwrap().id;
        let layout = Layout::uniform(hssd, s.object_count());
        let cfg = EngineConfig::dss();

        let sr = exec::estimate_workload(&[seq_read_query(&s)], &s, &layout, &pool, &cfg);
        assert!(sr.cost.total_io()[IoType::SeqRead] > 0.0);
        assert_eq!(sr.cost.total_io()[IoType::RandWrite], 0.0);

        let rr = exec::estimate_workload(&[rand_read_query(&s, 100.0)], &s, &layout, &pool, &cfg);
        assert!(rr.cost.total_io()[IoType::RandRead] > 0.0);

        let sw = exec::estimate_workload(&[seq_write_query(&s, 10.0)], &s, &layout, &pool, &cfg);
        assert!(sw.cost.total_io()[IoType::SeqWrite] >= 10.0);

        let rw = exec::estimate_workload(&[rand_write_query(&s, 10.0)], &s, &layout, &pool, &cfg);
        assert!(rw.cost.total_io()[IoType::RandWrite] >= 10.0);
        assert!(rw.cost.total_io()[IoType::RandRead] >= 10.0);
    }

    #[test]
    fn mixed_workload_validates() {
        let s = bench_schema(100_000.0, 100.0);
        mixed_workload(&s).validate(&s).unwrap();
    }
}
