//! # dot-workloads
//!
//! Workload models for the DOT reproduction: the TPC-H-derived DSS workloads
//! and the TPC-C-derived OLTP workload used throughout the paper's
//! evaluation (§4), plus the SLA machinery of §2.4/§4.3.
//!
//! The paper consumes workloads purely through the planner: a workload is a
//! set of concurrent query streams whose per-query I/O behaviour over
//! database objects drives both TOC estimation and SLA checking. These
//! modules therefore describe queries *declaratively* (join structure,
//! predicate selectivities, DML row counts) and leave physical decisions to
//! `dot-dbms`'s storage-aware planner:
//!
//! * [`spec`] — [`spec::Workload`] (streams × queries, concurrency,
//!   performance metric) and [`spec::SlaSpec`] (the *relative SLA* of §4.3:
//!   performance may degrade at most `1/ratio` versus the all-H-SSD layout);
//! * [`tpch`] — schema and all 22 original query templates at any scale
//!   factor, the paper's three DSS workloads (original 66-query, modified
//!   100-query with the high-selectivity Q2/5/9/11/17 variants of Canim et
//!   al., and the 11-template subset used for the exhaustive-search
//!   comparison, §4.4.3) plus the 8-object subset schema;
//! * [`tpcc`] — TPC-C schema at any warehouse count with the standard five
//!   transactions and 45/43/4/4/4 mix, matching the paper's DBT-2 setup
//!   (300 connections, §4.5);
//! * [`ycsb`] — YCSB-style key-value mixes (not from the paper; the cloud
//!   workload its introduction motivates);
//! * [`synth`] — small synthetic workloads for tests and benchmarks;
//! * [`drift`] — before/after drift pairs (read/write shifts, demand
//!   scaling, the analytical↔transactional phase flip) feeding the
//!   re-provisioning planner, plus the [`drift::profile_distance`] metric
//!   (read/write mix × demand × class weights) an online controller
//!   thresholds on to *detect* drift;
//! * [`telemetry`] — measured observations: simulate a query stream under
//!   the deployed layout, fold the per-query costs into a
//!   [`telemetry::MeasuredProfile`], and derive signatures from measured
//!   plan costs — behind one [`telemetry::TelemetrySource`] trait so
//!   scripted and measured observation streams are interchangeable.
//!
//! ## Worked example: build a workload, check its SLA machinery
//!
//! A workload is `c` identical streams of weighted queries plus a metric;
//! the relative SLA of §4.3 turns a premium-reference measurement into
//! per-query caps (response time) or a floor (throughput):
//!
//! ```
//! use dot_workloads::{tpch, PerfMetric, SlaSpec};
//!
//! let schema = tpch::subset_schema(1.0); // 8-object TPC-H subset, SF 1
//! let workload = tpch::subset_workload(&schema);
//! assert_eq!(workload.metric, PerfMetric::ResponseTime);
//! assert_eq!(workload.queries.len(), tpch::SUBSET_TEMPLATES.len());
//! workload.validate(&schema).expect("templates fit the schema");
//!
//! // SLA ratio 0.5: every query may be at most 2x slower than all-premium.
//! let sla = SlaSpec::relative(0.5);
//! assert_eq!(sla.response_cap_ms(120.0), 240.0);
//! ```
//!
//! Drift a workload and hand both phases to a re-provisioning planner:
//!
//! ```
//! use dot_workloads::{drift, tpcc, PerfMetric};
//!
//! let schema = tpcc::schema(2.0); // 2 warehouses
//! let before = drift::analytical_phase(&schema); // scan-heavy reporting
//! let after = tpcc::workload(&schema);           // the OLTP phase
//! assert_eq!(before.metric, PerfMetric::ResponseTime);
//! assert_eq!(after.metric, PerfMetric::Throughput);
//!
//! // Or perturb one workload in place: +40% toward writes, 3x demand.
//! let drifted = drift::scale_throughput(&drift::shift_read_write(&after, 0.4), 3.0);
//! assert_eq!(drifted.concurrency, 3 * after.concurrency);
//! drifted.validate(&schema).expect("drifted workloads stay valid");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod drift;
pub mod spec;
pub mod synth;
pub mod telemetry;
pub mod tpcc;
pub mod tpch;
pub mod ycsb;

pub use spec::{PerfMetric, SlaSpec, Workload};
