//! # dot-workloads
//!
//! Workload models for the DOT reproduction: the TPC-H-derived DSS workloads
//! and the TPC-C-derived OLTP workload used throughout the paper's
//! evaluation (§4), plus the SLA machinery of §2.4/§4.3.
//!
//! The paper consumes workloads purely through the planner: a workload is a
//! set of concurrent query streams whose per-query I/O behaviour over
//! database objects drives both TOC estimation and SLA checking. These
//! modules therefore describe queries *declaratively* (join structure,
//! predicate selectivities, DML row counts) and leave physical decisions to
//! `dot-dbms`'s storage-aware planner:
//!
//! * [`spec`] — [`spec::Workload`] (streams × queries, concurrency,
//!   performance metric) and [`spec::SlaSpec`] (the *relative SLA* of §4.3:
//!   performance may degrade at most `1/ratio` versus the all-H-SSD layout);
//! * [`tpch`] — schema and all 22 original query templates at any scale
//!   factor, the paper's three DSS workloads (original 66-query, modified
//!   100-query with the high-selectivity Q2/5/9/11/17 variants of Canim et
//!   al., and the 11-template subset used for the exhaustive-search
//!   comparison, §4.4.3) plus the 8-object subset schema;
//! * [`tpcc`] — TPC-C schema at any warehouse count with the standard five
//!   transactions and 45/43/4/4/4 mix, matching the paper's DBT-2 setup
//!   (300 connections, §4.5);
//! * [`ycsb`] — YCSB-style key-value mixes (not from the paper; the cloud
//!   workload its introduction motivates);
//! * [`synth`] — small synthetic workloads for tests and benchmarks.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod spec;
pub mod synth;
pub mod tpcc;
pub mod tpch;
pub mod ycsb;

pub use spec::{PerfMetric, SlaSpec, Workload};
