//! Serialization round-trips and catalog consistency checks.

use dot_storage::cost::CostModel;
use dot_storage::raid::{raid0, Raid0Scaling, RaidController};
use dot_storage::{catalog, IoType, StoragePool};

#[test]
fn pools_roundtrip_through_json() {
    for pool in [catalog::box1(), catalog::box2(), catalog::full_pool()] {
        let json = serde_json::to_string(&pool).expect("serialize");
        let back: StoragePool = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(pool, back);
    }
}

#[test]
fn profiles_roundtrip_preserving_latencies() {
    let p = catalog::hssd_profile();
    let json = serde_json::to_string(&p).unwrap();
    let back: dot_storage::IoProfile = serde_json::from_str(&json).unwrap();
    for io in dot_storage::IO_TYPES {
        for c in [1, 37, 300] {
            assert_eq!(p.latency_ms(io, c), back.latency_ms(io, c));
        }
    }
}

#[test]
fn synthetic_raid_widths_scale_sensibly() {
    // Sequential bandwidth grows with stripe width; price per GB-hour falls
    // (the controller amortizes over more capacity).
    let model = CostModel::PAPER;
    let widths = [2usize, 4, 8];
    let mut last_sr = f64::INFINITY;
    let mut last_price = f64::INFINITY;
    for n in widths {
        let class = raid0(
            &format!("HDD RAID 0 x{n}"),
            &catalog::hdd_spec(),
            &catalog::hdd_profile(),
            n,
            RaidController::PAPER,
            Raid0Scaling::CALIBRATED,
            &model,
        );
        class.validate().unwrap();
        let sr = class.profile.latency_ms(IoType::SeqRead, 1);
        assert!(sr < last_sr, "x{n}: SR {sr} did not improve");
        assert!(
            class.price_cents_per_gb_hour < last_price,
            "x{n}: price did not fall"
        );
        last_sr = sr;
        last_price = class.price_cents_per_gb_hour;
    }
}

#[test]
fn full_pool_orders_match_catalog_constants() {
    let pool = catalog::full_pool();
    assert_eq!(pool.len(), 5);
    for (class, &published) in pool.classes().iter().zip(catalog::PUBLISHED_PRICES.iter()) {
        assert_eq!(class.price_cents_per_gb_hour, published);
    }
}

#[test]
fn price_and_capacity_edits_are_local() {
    let mut pool = catalog::box2();
    let before: Vec<f64> = pool.price_vector();
    assert!(pool.set_price("HDD", 1.0));
    let after = pool.price_vector();
    // Only the HDD entry changed.
    let changed: Vec<usize> = before
        .iter()
        .zip(&after)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(changed.len(), 1);
    assert_eq!(
        pool.class_by_name("HDD").unwrap().price_cents_per_gb_hour,
        1.0
    );
}

#[test]
#[should_panic(expected = "price must be positive")]
fn nonpositive_price_rejected() {
    let mut pool = catalog::box2();
    pool.set_price("HDD", 0.0);
}
