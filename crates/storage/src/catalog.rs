//! The paper's concrete device catalog (Tables 1 and 2) and the two
//! experimental storage subsystems ("Box 1" and "Box 2", §4.1).
//!
//! I/O profiles are the *measured, DBMS-level* service times published in
//! Table 1 — the paper itself uses these constants as the optimizer's device
//! model, so embedding them reproduces exactly the trade-off space DOT
//! explored. Prices are the published Table 1 values; tests assert that the
//! analytic [`CostModel`](crate::cost::CostModel) recomputes each of them
//! within tolerance, which
//! validates the cost model used for synthetic devices.

use crate::device::{DeviceKind, DeviceSpec, StorageClass};
use crate::pool::StoragePool;
use crate::profile::IoProfile;
use crate::raid::RaidController;

/// Canonical names of the five paper storage classes.
pub mod names {
    /// Bare WD Caviar Black hard drive.
    pub const HDD: &str = "HDD";
    /// Two HDDs striped behind the SAS6/iR controller.
    pub const HDD_RAID0: &str = "HDD RAID 0";
    /// Imation M-Class MLC SSD ("low-end SSD").
    pub const LSSD: &str = "L-SSD";
    /// Two L-SSDs striped.
    pub const LSSD_RAID0: &str = "L-SSD RAID 0";
    /// FusionIO ioDrive ("high-end SSD").
    pub const HSSD: &str = "H-SSD";
}

/// Table 2: WD Caviar Black 500 GB HDD.
pub fn hdd_spec() -> DeviceSpec {
    DeviceSpec {
        model: "WD Caviar Black".into(),
        kind: DeviceKind::Hdd,
        capacity_gb: 500.0,
        purchase_cents: 3_400.0,
        power_watts: 8.3,
        interface: "SATA II".into(),
    }
}

/// Table 2: Imation M-Class 2.5" 128 GB MLC SSD.
pub fn lssd_spec() -> DeviceSpec {
    DeviceSpec {
        model: "Imation M-Class 2.5\"".into(),
        kind: DeviceKind::SsdMlc,
        capacity_gb: 128.0,
        purchase_cents: 25_300.0,
        power_watts: 2.5,
        interface: "SATA II".into(),
    }
}

/// Table 2: FusionIO ioDrive 80 GB SLC SSD.
pub fn hssd_spec() -> DeviceSpec {
    DeviceSpec {
        model: "FusionIO ioDrive".into(),
        kind: DeviceKind::SsdSlc,
        capacity_gb: 80.0,
        purchase_cents: 355_000.0,
        power_watts: 10.5,
        interface: "PCI-Express".into(),
    }
}

/// Table 1, measured at concurrency 1 and 300: bare HDD.
pub fn hdd_profile() -> IoProfile {
    IoProfile::from_anchors([0.072, 13.32, 0.012, 10.15], [0.174, 8.903, 0.039, 8.124])
}

/// Table 1: two-way HDD RAID 0.
pub fn hdd_raid0_profile() -> IoProfile {
    IoProfile::from_anchors([0.049, 12.19, 0.011, 11.55], [0.096, 2.712, 0.034, 3.770])
}

/// Table 1: bare low-end SSD.
pub fn lssd_profile() -> IoProfile {
    IoProfile::from_anchors([0.036, 1.759, 0.020, 62.01], [0.053, 1.468, 0.341, 37.45])
}

/// Table 1: two-way L-SSD RAID 0.
pub fn lssd_raid0_profile() -> IoProfile {
    IoProfile::from_anchors([0.021, 1.570, 0.013, 21.14], [0.037, 0.826, 0.082, 17.71])
}

/// Table 1: high-end SSD (FusionIO).
pub fn hssd_profile() -> IoProfile {
    IoProfile::from_anchors([0.016, 0.091, 0.009, 0.928], [0.013, 0.024, 0.025, 0.986])
}

/// Published Table 1 prices, cents/GB/hour, in catalog order
/// (HDD, HDD RAID 0, L-SSD, L-SSD RAID 0, H-SSD).
pub const PUBLISHED_PRICES: [f64; 5] = [3.47e-4, 8.19e-4, 7.65e-3, 9.51e-3, 1.69e-1];

fn class(name: &str, devices: Vec<DeviceSpec>, profile: IoProfile, price: f64) -> StorageClass {
    let capacity_gb = devices.iter().map(|d| d.capacity_gb).sum();
    let raided = devices.len() > 1;
    StorageClass {
        id: crate::ClassId(usize::MAX),
        name: name.to_owned(),
        devices,
        controller_cents: if raided {
            RaidController::PAPER.purchase_cents
        } else {
            0.0
        },
        controller_watts: if raided {
            RaidController::PAPER.power_watts
        } else {
            0.0
        },
        profile,
        capacity_gb,
        price_cents_per_gb_hour: price,
    }
}

/// The bare-HDD storage class with published price and profile.
pub fn hdd_class() -> StorageClass {
    class(
        names::HDD,
        vec![hdd_spec()],
        hdd_profile(),
        PUBLISHED_PRICES[0],
    )
}

/// The HDD RAID 0 class.
pub fn hdd_raid0_class() -> StorageClass {
    class(
        names::HDD_RAID0,
        vec![hdd_spec(), hdd_spec()],
        hdd_raid0_profile(),
        PUBLISHED_PRICES[1],
    )
}

/// The bare low-end-SSD class.
pub fn lssd_class() -> StorageClass {
    class(
        names::LSSD,
        vec![lssd_spec()],
        lssd_profile(),
        PUBLISHED_PRICES[2],
    )
}

/// The L-SSD RAID 0 class.
pub fn lssd_raid0_class() -> StorageClass {
    class(
        names::LSSD_RAID0,
        vec![lssd_spec(), lssd_spec()],
        lssd_raid0_profile(),
        PUBLISHED_PRICES[3],
    )
}

/// The high-end-SSD class.
pub fn hssd_class() -> StorageClass {
    class(
        names::HSSD,
        vec![hssd_spec()],
        hssd_profile(),
        PUBLISHED_PRICES[4],
    )
}

/// All five paper classes in Table 1 order (used by the Table 1 harness).
pub fn all_classes() -> Vec<StorageClass> {
    vec![
        hdd_class(),
        hdd_raid0_class(),
        lssd_class(),
        lssd_raid0_class(),
        hssd_class(),
    ]
}

/// Box 1 (§4.1): one HDD RAID 0, one L-SSD, one H-SSD.
pub fn box1() -> StoragePool {
    StoragePool::new("Box 1", vec![hdd_raid0_class(), lssd_class(), hssd_class()])
}

/// Box 2 (§4.1): one HDD, one L-SSD RAID 0, one H-SSD.
pub fn box2() -> StoragePool {
    StoragePool::new("Box 2", vec![hdd_class(), lssd_raid0_class(), hssd_class()])
}

/// A pool containing all five classes — convenient for tests and for the
/// generalized provisioning experiments.
pub fn full_pool() -> StoragePool {
    StoragePool::new("Full", all_classes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::io::IoType;

    /// The analytic cost model must recompute every published Table 1 price.
    /// HDD-based classes land within 10% (the paper's HDD power weighting is
    /// unstated); SSD classes land within 1%.
    #[test]
    fn cost_model_reproduces_published_prices() {
        let m = CostModel::PAPER;
        for (c, &published) in all_classes().iter().zip(PUBLISHED_PRICES.iter()) {
            let computed = c.computed_price_cents_per_gb_hour(&m);
            let tol = if c.devices[0].kind == DeviceKind::Hdd {
                0.10
            } else {
                0.01
            };
            let err = (computed - published).abs() / published;
            assert!(
                err < tol,
                "{}: computed {computed:.4e}, published {published:.4e} (err {err:.3})",
                c.name
            );
        }
    }

    #[test]
    fn all_classes_validate() {
        for c in all_classes() {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.name));
        }
    }

    #[test]
    fn price_ordering_matches_paper() {
        // HDD < HDD RAID0 < L-SSD < L-SSD RAID0 < H-SSD per GB-hour.
        let prices: Vec<f64> = all_classes()
            .iter()
            .map(|c| c.price_cents_per_gb_hour)
            .collect();
        for w in prices.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn hssd_dominates_random_reads() {
        for c in all_classes() {
            if c.name != names::HSSD {
                assert!(
                    c.profile.latency_ms(IoType::RandRead, 1)
                        > hssd_profile().latency_ms(IoType::RandRead, 1)
                );
            }
        }
    }

    /// §4.4.1's headline ratios: SSD RAID 0 gets SR performance within ~1.3x
    /// of the H-SSD at ~0.056x the price; HDD RAID 0 is ~1.36x faster than
    /// the L-SSD at sequential reads at ~0.107x the price.
    #[test]
    fn raid0_cost_effectiveness_ratios() {
        let hssd = hssd_class();
        let lraid = lssd_raid0_class();
        let sr_ratio = lraid.profile.latency_ms(IoType::SeqRead, 1)
            / hssd.profile.latency_ms(IoType::SeqRead, 1);
        assert!((sr_ratio - 1.3).abs() < 0.05, "sr_ratio {sr_ratio}");
        let price_ratio = lraid.price_cents_per_gb_hour / hssd.price_cents_per_gb_hour;
        assert!(
            (price_ratio - 0.056).abs() < 0.002,
            "price_ratio {price_ratio}"
        );

        let hraid = hdd_raid0_class();
        let lssd = lssd_class();
        let sr_gain = lssd.profile.latency_ms(IoType::SeqRead, 1)
            / hraid.profile.latency_ms(IoType::SeqRead, 1);
        // lssd SR 0.036 / hdd-raid 0.049 < 1: the paper phrases this as the
        // HDD RAID 0 being x1.36 *slower-class-beating* on cost; check the
        // published price ratio instead.
        let price_gain = hraid.price_cents_per_gb_hour / lssd.price_cents_per_gb_hour;
        assert!(
            (price_gain - 0.107).abs() < 0.002,
            "price_gain {price_gain}"
        );
        assert!(sr_gain > 0.7 && sr_gain < 1.0);
    }

    #[test]
    fn lssd_random_writes_are_pathological() {
        // Table 1's famous anomaly: the L-SSD's RW latency (62 ms) is worse
        // than the plain HDD's (10.2 ms). DOT's TPC-C layouts hinge on this.
        let l = lssd_profile();
        let h = hdd_profile();
        assert!(l.latency_ms(IoType::RandWrite, 1) > 6.0 * h.latency_ms(IoType::RandWrite, 1));
        // ...and RAID 0 rescues the L-SSD considerably (62 → 21 ms).
        let lr = lssd_raid0_profile();
        assert!(lr.latency_ms(IoType::RandWrite, 1) < 0.4 * l.latency_ms(IoType::RandWrite, 1));
    }

    #[test]
    fn boxes_have_three_classes_each() {
        let b1 = box1();
        let b2 = box2();
        assert_eq!(b1.classes().len(), 3);
        assert_eq!(b2.classes().len(), 3);
        assert!(b1.class_by_name(names::HDD_RAID0).is_some());
        assert!(b1.class_by_name(names::LSSD).is_some());
        assert!(b1.class_by_name(names::HSSD).is_some());
        assert!(b2.class_by_name(names::HDD).is_some());
        assert!(b2.class_by_name(names::LSSD_RAID0).is_some());
        assert!(b2.class_by_name(names::HSSD).is_some());
    }

    #[test]
    fn raid_capacity_doubles_member() {
        assert_eq!(hdd_raid0_class().capacity_gb, 1000.0);
        assert_eq!(lssd_raid0_class().capacity_gb, 256.0);
    }
}
