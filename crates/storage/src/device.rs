//! Device specifications and the `StorageClass` abstraction consumed by the
//! rest of the stack.
//!
//! A *storage class* (§2.2) is "an individual device, or a RAID group":
//! anything a database object can be placed on wholesale. The optimizer only
//! ever sees the class's price `p_j`, capacity `c_j`, and I/O profile
//! `τ^d_r`; the underlying [`DeviceSpec`] is kept so Table 2 can be
//! regenerated and so synthetic configurations can be priced from first
//! principles.

use crate::cost::CostModel;
use crate::profile::IoProfile;
use serde::{Deserialize, Serialize};

/// Index of a storage class within a [`StoragePool`](crate::StoragePool).
///
/// Class ids are dense indices assigned by the pool; they are meaningless
/// across pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClassId(pub usize);

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Broad device technology, used for reporting and sanity checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Rotational hard disk drive.
    Hdd,
    /// Flash SSD with multi-level cells (the paper's "low-end SSD").
    SsdMlc,
    /// Flash SSD with single-level cells (the paper's "high-end SSD").
    SsdSlc,
}

impl DeviceKind {
    /// Human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            DeviceKind::Hdd => "HDD",
            DeviceKind::SsdMlc => "MLC SSD",
            DeviceKind::SsdSlc => "SLC SSD",
        }
    }
}

/// Physical description of one device model — the contents of the paper's
/// Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name ("WD Caviar Black", "FusionIO ioDrive", ...).
    pub model: String,
    /// Device technology.
    pub kind: DeviceKind,
    /// Usable capacity in GB.
    pub capacity_gb: f64,
    /// Purchase price in cents.
    pub purchase_cents: f64,
    /// Average power draw in watts (paper: mean of read and write draw).
    pub power_watts: f64,
    /// Host interface ("SATA II", "PCI-Express", ...).
    pub interface: String,
}

impl DeviceSpec {
    /// Validate physical plausibility.
    pub fn validate(&self) -> Result<(), crate::StorageError> {
        if self.capacity_gb <= 0.0 || self.capacity_gb.is_nan() {
            return Err(crate::StorageError::InvalidSpec(format!(
                "{}: capacity must be positive",
                self.model
            )));
        }
        if self.purchase_cents < 0.0 || self.power_watts < 0.0 {
            return Err(crate::StorageError::InvalidSpec(format!(
                "{}: negative cost or power",
                self.model
            )));
        }
        Ok(())
    }
}

/// A provisionable storage class: the unit of data placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageClass {
    /// Dense id within its pool (assigned by [`StoragePool`](crate::StoragePool)).
    pub id: ClassId,
    /// Display name ("HDD RAID 0", "H-SSD", ...).
    pub name: String,
    /// Constituent device model(s). One entry for a bare device, `n` entries
    /// for an `n`-way RAID 0 group.
    pub devices: Vec<DeviceSpec>,
    /// Extra purchase cost in cents not attributable to a device (RAID
    /// controller).
    pub controller_cents: f64,
    /// Extra power draw in watts (RAID controller surcharge).
    pub controller_watts: f64,
    /// Measured or derived I/O service-time profile.
    pub profile: IoProfile,
    /// Usable capacity in GB (sum of constituent devices for RAID 0).
    pub capacity_gb: f64,
    /// Storage price in cents/GB/hour — `p_j` of the paper.
    pub price_cents_per_gb_hour: f64,
}

impl StorageClass {
    /// Build a class from a single bare device, pricing it with `model`.
    pub fn from_device(
        name: &str,
        spec: DeviceSpec,
        profile: IoProfile,
        model: &CostModel,
    ) -> Self {
        let price =
            model.price_cents_per_gb_hour(spec.purchase_cents, spec.power_watts, spec.capacity_gb);
        StorageClass {
            id: ClassId(usize::MAX),
            name: name.to_owned(),
            capacity_gb: spec.capacity_gb,
            devices: vec![spec],
            controller_cents: 0.0,
            controller_watts: 0.0,
            profile,
            price_cents_per_gb_hour: price,
        }
    }

    /// Total purchase cost (cents) including the controller.
    pub fn total_purchase_cents(&self) -> f64 {
        self.devices.iter().map(|d| d.purchase_cents).sum::<f64>() + self.controller_cents
    }

    /// Total average power draw (watts) including the controller.
    pub fn total_power_watts(&self) -> f64 {
        self.devices.iter().map(|d| d.power_watts).sum::<f64>() + self.controller_watts
    }

    /// Recompute the price from the constituent specs under `model`. The
    /// catalog stores published Table 1 prices verbatim; this method lets
    /// tests confirm that the analytic model agrees with them.
    pub fn computed_price_cents_per_gb_hour(&self, model: &CostModel) -> f64 {
        model.price_cents_per_gb_hour(
            self.total_purchase_cents(),
            self.total_power_watts(),
            self.capacity_gb,
        )
    }

    /// Override the published price with the analytically computed one.
    /// Used for synthetic devices that have no published price.
    pub fn with_computed_price(mut self, model: &CostModel) -> Self {
        self.price_cents_per_gb_hour = self.computed_price_cents_per_gb_hour(model);
        self
    }

    /// Hourly cost (cents/hour) of `gb` gigabytes resident on this class —
    /// one term of the layout cost `C(L) = Σ p_j · S_j` (§2.1).
    pub fn residency_cost_cents_per_hour(&self, gb: f64) -> f64 {
        self.price_cents_per_gb_hour * gb
    }

    /// Seconds to stream `pages` pages *off* this class with one bulk
    /// reader: `pages · τ_SR(c=1)`. The single-thread anchor applies —
    /// a migration copy job is one sequential stream, not a concurrent
    /// workload. Used by the re-provisioning planner to price the read
    /// side of an object-group move.
    pub fn bulk_read_seconds(&self, pages: f64) -> f64 {
        pages * self.profile.at_c1[crate::IoType::SeqRead.index()] / 1_000.0
    }

    /// Seconds to stream `rows` row-writes *onto* this class with one bulk
    /// writer: `rows · τ_SW(c=1)` (Table 1 reports SW per row). The write
    /// side of an object-group move; the caller derives `rows` from the
    /// object's schema statistics.
    pub fn bulk_write_seconds(&self, rows: f64) -> f64 {
        rows * self.profile.at_c1[crate::IoType::SeqWrite.index()] / 1_000.0
    }

    /// Validate spec and profile consistency.
    pub fn validate(&self) -> Result<(), crate::StorageError> {
        if self.devices.is_empty() {
            return Err(crate::StorageError::InvalidSpec(format!(
                "{}: class has no devices",
                self.name
            )));
        }
        for d in &self.devices {
            d.validate()?;
        }
        self.profile.validate()?;
        if self.capacity_gb <= 0.0 || self.capacity_gb.is_nan() {
            return Err(crate::StorageError::InvalidSpec(format!(
                "{}: capacity must be positive",
                self.name
            )));
        }
        if self.price_cents_per_gb_hour <= 0.0 || self.price_cents_per_gb_hour.is_nan() {
            return Err(crate::StorageError::InvalidSpec(format!(
                "{}: price must be positive",
                self.name
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec {
            model: "TestDisk 1000".into(),
            kind: DeviceKind::Hdd,
            capacity_gb: 100.0,
            purchase_cents: 26_280.0, // 1 cent/hour amortized under PAPER model
            power_watts: 0.0,
            interface: "SATA II".into(),
        }
    }

    #[test]
    fn from_device_prices_correctly() {
        let c = StorageClass::from_device(
            "Test",
            spec(),
            IoProfile::flat([0.1, 1.0, 0.1, 1.0]),
            &CostModel::PAPER,
        );
        // 1 cent/hour over 100 GB = 0.01 cents/GB/hour.
        assert!((c.price_cents_per_gb_hour - 0.01).abs() < 1e-12);
        assert!((c.residency_cost_cents_per_hour(50.0) - 0.5).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bulk_transfer_uses_the_single_thread_anchors() {
        let c = StorageClass::from_device(
            "Test",
            spec(),
            IoProfile::from_anchors([0.1, 1.0, 0.02, 1.0], [0.5, 2.0, 0.08, 3.0]),
            &CostModel::PAPER,
        );
        // 10,000 pages at 0.1 ms/page = 1 s; the c=300 anchor must not leak in.
        assert!((c.bulk_read_seconds(10_000.0) - 1.0).abs() < 1e-12);
        // 100,000 rows at 0.02 ms/row = 2 s.
        assert!((c.bulk_write_seconds(100_000.0) - 2.0).abs() < 1e-12);
        assert_eq!(c.bulk_read_seconds(0.0), 0.0);
    }

    #[test]
    fn totals_include_controller() {
        let mut c = StorageClass::from_device(
            "Test",
            spec(),
            IoProfile::flat([0.1, 1.0, 0.1, 1.0]),
            &CostModel::PAPER,
        );
        c.devices.push(spec());
        c.controller_cents = 11_000.0;
        c.controller_watts = 8.25;
        assert!((c.total_purchase_cents() - (2.0 * 26_280.0 + 11_000.0)).abs() < 1e-9);
        assert!((c.total_power_watts() - 8.25).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut c = StorageClass::from_device(
            "Test",
            spec(),
            IoProfile::flat([0.1, 1.0, 0.1, 1.0]),
            &CostModel::PAPER,
        );
        c.devices.clear();
        assert!(c.validate().is_err());

        let mut bad = spec();
        bad.capacity_gb = -1.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn computed_price_matches_published_for_simple_device() {
        let c = StorageClass::from_device(
            "Test",
            spec(),
            IoProfile::flat([0.1, 1.0, 0.1, 1.0]),
            &CostModel::PAPER,
        );
        let recomputed = c.computed_price_cents_per_gb_hour(&CostModel::PAPER);
        assert!((recomputed - c.price_cents_per_gb_hour).abs() < 1e-12);
    }
}
