//! A pool of storage classes: the `D = {d_1, …, d_M}` of the problem
//! definition (§2.2), with its price vector `P` and capacity vector `C`.

use crate::device::{ClassId, StorageClass};
use serde::{Deserialize, Serialize};

/// An ordered collection of storage classes available on one machine.
///
/// The pool assigns dense [`ClassId`]s on construction. Per the paper, class
/// order is irrelevant to the optimizer except for tie-breaking; by
/// convention we keep catalog order (cheapest per GB-hour first is *not*
/// guaranteed — use [`StoragePool::ids_by_price_desc`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoragePool {
    name: String,
    classes: Vec<StorageClass>,
}

impl StoragePool {
    /// Build a pool, assigning dense ids in the given order.
    ///
    /// # Panics
    /// Panics if two classes share a name (names are used as stable keys in
    /// reports and layouts) or if any class fails validation.
    pub fn new(name: &str, mut classes: Vec<StorageClass>) -> Self {
        for (i, c) in classes.iter_mut().enumerate() {
            c.id = ClassId(i);
        }
        for c in &classes {
            c.validate()
                .unwrap_or_else(|e| panic!("invalid class {}: {e}", c.name));
        }
        for i in 0..classes.len() {
            for j in (i + 1)..classes.len() {
                assert!(
                    classes[i].name != classes[j].name,
                    "duplicate class name {}",
                    classes[i].name
                );
            }
        }
        StoragePool {
            name: name.to_owned(),
            classes,
        }
    }

    /// Pool display name ("Box 1", "Box 2", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All classes in id order.
    pub fn classes(&self) -> &[StorageClass] {
        &self.classes
    }

    /// Number of storage classes `M`.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if the pool is empty (never the case for valid problems).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Look a class up by id.
    pub fn class(&self, id: ClassId) -> Result<&StorageClass, crate::StorageError> {
        self.classes
            .get(id.0)
            .ok_or(crate::StorageError::UnknownClass(id))
    }

    /// Look a class up by id, panicking on a foreign id. Most call sites
    /// construct ids from this very pool, where a miss is a logic error.
    pub fn class_unchecked(&self, id: ClassId) -> &StorageClass {
        &self.classes[id.0]
    }

    /// Look a class up by display name.
    pub fn class_by_name(&self, name: &str) -> Option<&StorageClass> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// All class ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len()).map(ClassId)
    }

    /// Ids sorted by price per GB-hour, most expensive first. The head of
    /// this ordering is DOT's initial layout target `d_1` (§3.1).
    pub fn ids_by_price_desc(&self) -> Vec<ClassId> {
        let mut ids: Vec<ClassId> = self.ids().collect();
        ids.sort_by(|a, b| {
            let pa = self.classes[a.0].price_cents_per_gb_hour;
            let pb = self.classes[b.0].price_cents_per_gb_hour;
            pb.partial_cmp(&pa).expect("prices are finite")
        });
        ids
    }

    /// The most expensive class per GB-hour — the paper's `d_1`, where the
    /// initial layout `L_0` places every object.
    pub fn most_expensive(&self) -> ClassId {
        self.ids_by_price_desc()[0]
    }

    /// Price vector `P` in id order (cents/GB/hour).
    pub fn price_vector(&self) -> Vec<f64> {
        self.classes
            .iter()
            .map(|c| c.price_cents_per_gb_hour)
            .collect()
    }

    /// Capacity vector `C` in id order (GB).
    pub fn capacity_vector(&self) -> Vec<f64> {
        self.classes.iter().map(|c| c.capacity_gb).collect()
    }

    /// Replace the capacity of the named class (used by the capacity-sweep
    /// experiments, §4.4.3 / §4.5.3). Returns `true` if the class existed.
    pub fn set_capacity(&mut self, name: &str, capacity_gb: f64) -> bool {
        if let Some(c) = self.classes.iter_mut().find(|c| c.name == name) {
            c.capacity_gb = capacity_gb;
            true
        } else {
            false
        }
    }

    /// Replace the price of the named class (used by price-sensitivity
    /// sweeps). Returns `true` if the class existed.
    pub fn set_price(&mut self, name: &str, cents_per_gb_hour: f64) -> bool {
        assert!(cents_per_gb_hour > 0.0, "price must be positive");
        if let Some(c) = self.classes.iter_mut().find(|c| c.name == name) {
            c.price_cents_per_gb_hour = cents_per_gb_hour;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn ids_are_dense_and_ordered() {
        let pool = catalog::box1();
        for (i, c) in pool.classes().iter().enumerate() {
            assert_eq!(c.id, ClassId(i));
        }
        let ids: Vec<ClassId> = pool.ids().collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn most_expensive_is_hssd_on_both_boxes() {
        for pool in [catalog::box1(), catalog::box2()] {
            let top = pool.most_expensive();
            assert_eq!(pool.class_unchecked(top).name, catalog::names::HSSD);
        }
    }

    #[test]
    fn price_desc_ordering() {
        let pool = catalog::full_pool();
        let ids = pool.ids_by_price_desc();
        let prices: Vec<f64> = ids
            .iter()
            .map(|&id| pool.class_unchecked(id).price_cents_per_gb_hour)
            .collect();
        for w in prices.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn unknown_class_is_an_error() {
        let pool = catalog::box1();
        assert!(pool.class(ClassId(99)).is_err());
    }

    #[test]
    fn set_capacity_updates_vector() {
        let mut pool = catalog::box2();
        assert!(pool.set_capacity(catalog::names::HSSD, 21.0));
        let hssd = pool.class_by_name(catalog::names::HSSD).unwrap();
        assert_eq!(hssd.capacity_gb, 21.0);
        assert!(!pool.set_capacity("No Such Device", 1.0));
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn duplicate_names_rejected() {
        let _ = StoragePool::new("dup", vec![catalog::hdd_class(), catalog::hdd_class()]);
    }
}
