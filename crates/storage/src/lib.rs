//! # dot-storage
//!
//! Heterogeneous storage-device model for the DOT reproduction
//! (*Towards Cost-Effective Storage Provisioning for DBMSs*, VLDB 2011).
//!
//! This crate is the bottom layer of the stack. It models everything the
//! paper's optimizer knows about hardware:
//!
//! * the four canonical DBMS I/O patterns — sequential read, random read,
//!   sequential write, random write ([`IoType`]);
//! * per-pattern, per-device service times under a given *degree of
//!   concurrency* ([`IoProfile`]), anchored on the measured constants of the
//!   paper's Table 1 and interpolated in log-space between the anchors;
//! * the total-operating-cost price model (purchase cost amortized over the
//!   device lifetime plus run-time energy, in cents/GB/hour — [`cost`]);
//! * RAID-0 composition of identical devices behind a controller ([`raid`]);
//! * the concrete device catalog of the paper — HDD, HDD RAID 0, low-end SSD,
//!   L-SSD RAID 0, high-end SSD — and the two experimental machines
//!   ("Box 1" / "Box 2") built from them ([`catalog`]);
//! * per-device-pair contention for bulk migration transfers — a transfer
//!   occupies one source and one target class, disjoint pairs overlap
//!   ([`transfer`]).
//!
//! Everything above this crate consumes only [`StorageClass`] values grouped
//! in a [`StoragePool`]: a price vector, a capacity vector, and a latency
//! table. That is exactly the paper's interface between hardware and the DOT
//! optimizer, which is why a simulated device layer preserves the published
//! trade-off space (see DESIGN.md §2).
//!
//! ## Quick example
//!
//! ```
//! use dot_storage::{catalog, IoType};
//!
//! let pool = catalog::box2();
//! let hssd = pool.class_by_name("H-SSD").unwrap();
//! // Random reads on the high-end SSD are ~146x faster than on the plain HDD.
//! let hdd = pool.class_by_name("HDD").unwrap();
//! let speedup = hdd.profile.latency_ms(IoType::RandRead, 1)
//!     / hssd.profile.latency_ms(IoType::RandRead, 1);
//! assert!(speedup > 100.0);
//! // ...but each byte stored on it costs ~487x more per hour.
//! assert!(hssd.price_cents_per_gb_hour / hdd.price_cents_per_gb_hour > 400.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod catalog;
pub mod cost;
pub mod device;
pub mod io;
pub mod pool;
pub mod profile;
pub mod raid;
pub mod transfer;

pub use device::{ClassId, DeviceKind, DeviceSpec, StorageClass};
pub use io::{IoCounts, IoType, IO_TYPES};
pub use pool::StoragePool;
pub use profile::IoProfile;
pub use transfer::TransferLanes;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A storage class id was not present in the pool.
    UnknownClass(ClassId),
    /// A device parameter was out of its physical domain (e.g. zero capacity).
    InvalidSpec(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownClass(id) => write!(f, "unknown storage class {id:?}"),
            StorageError::InvalidSpec(msg) => write!(f, "invalid device spec: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}
