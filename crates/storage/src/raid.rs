//! RAID-0 composition of identical devices behind a hardware controller.
//!
//! The paper's RAID 0 groups are built from two identical devices and a Dell
//! SAS6/iR controller ($110, 8.25 W surcharge, §4.1). For the five classes it
//! evaluates, the I/O profile of the RAID group was *measured* (Table 1) and
//! the catalog stores those numbers verbatim. For synthetic configurations —
//! needed by the generalized provisioning experiments of §5.1, where DOT is
//! asked to choose among storage configurations that were never benchmarked —
//! this module provides an analytic RAID-0 performance model calibrated
//! against the measured pairs.

use crate::cost::CostModel;
use crate::device::{DeviceSpec, StorageClass};
use crate::profile::IoProfile;
use serde::{Deserialize, Serialize};

/// RAID controller hardware description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaidController {
    /// Purchase price in cents.
    pub purchase_cents: f64,
    /// Power surcharge in watts.
    pub power_watts: f64,
}

impl RaidController {
    /// The paper's Dell SAS6/iR: $110, 8.25 W (§4.1).
    pub const PAPER: RaidController = RaidController {
        purchase_cents: 11_000.0,
        power_watts: 8.25,
    };
}

/// Per-pattern speedup factors applied to a member device's profile when `n`
/// of them are striped. Factors are the *per-stripe-width* gain; an n-way
/// group applies `factor^(log2 n)` so that doubling the stripe width applies
/// the factor once.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Raid0Scaling {
    /// Sequential-read speedup per doubling. Calibrated ≈1.47 from the
    /// paper's HDD→HDD-RAID0 (0.072→0.049) and L-SSD→L-SSD-RAID0
    /// (0.036→0.021) single-thread measurements.
    pub seq_read: f64,
    /// Random-read speedup per doubling. Small for HDDs at c=1 (1.09
    /// measured) because a single stream cannot overlap seeks.
    pub rand_read: f64,
    /// Sequential-write speedup per doubling (1.09–1.54 measured).
    pub seq_write: f64,
    /// Random-write speedup per doubling. Large for SSDs (2.93 measured for
    /// the L-SSD pair: striping spreads erase-block pressure), mild for HDDs.
    pub rand_write: f64,
}

impl Raid0Scaling {
    /// Calibration midpoint over the paper's two measured RAID pairs.
    pub const CALIBRATED: Raid0Scaling = Raid0Scaling {
        seq_read: 1.55,
        rand_read: 1.10,
        seq_write: 1.25,
        rand_write: 1.80,
    };

    fn factors(&self) -> [f64; 4] {
        [
            self.seq_read,
            self.rand_read,
            self.seq_write,
            self.rand_write,
        ]
    }
}

/// Build an `n`-way RAID 0 storage class from `n` copies of `member`.
///
/// Capacity and power sum over members; the price is computed analytically
/// from total purchase cost + controller under `cost_model`. The profile is
/// derived from `member_profile` via `scaling` (see [`Raid0Scaling`]).
///
/// # Panics
/// Panics if `n < 2` — a one-member "RAID 0" is just the bare device.
pub fn raid0(
    name: &str,
    member: &DeviceSpec,
    member_profile: &IoProfile,
    n: usize,
    controller: RaidController,
    scaling: Raid0Scaling,
    cost_model: &CostModel,
) -> StorageClass {
    assert!(n >= 2, "RAID 0 needs at least two members");
    let doublings = (n as f64).log2();
    let mut at_c1 = member_profile.at_c1;
    let mut at_c300 = member_profile.at_c300;
    for (i, f) in scaling.factors().iter().enumerate() {
        let gain = f.powf(doublings);
        at_c1[i] /= gain;
        at_c300[i] /= gain;
    }
    let devices: Vec<DeviceSpec> = std::iter::repeat_with(|| member.clone()).take(n).collect();
    let capacity_gb: f64 = devices.iter().map(|d| d.capacity_gb).sum();
    let class = StorageClass {
        id: crate::ClassId(usize::MAX),
        name: name.to_owned(),
        devices,
        controller_cents: controller.purchase_cents,
        controller_watts: controller.power_watts,
        profile: IoProfile::from_anchors(at_c1, at_c300),
        capacity_gb,
        price_cents_per_gb_hour: 0.0,
    };
    class.with_computed_price(cost_model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::io::IoType;

    fn hdd_spec() -> DeviceSpec {
        DeviceSpec {
            model: "WD Caviar Black".into(),
            kind: DeviceKind::Hdd,
            capacity_gb: 500.0,
            purchase_cents: 3_400.0,
            power_watts: 8.3,
            interface: "SATA II".into(),
        }
    }

    fn hdd_profile() -> IoProfile {
        IoProfile::from_anchors([0.072, 13.32, 0.012, 10.15], [0.174, 8.903, 0.039, 8.124])
    }

    #[test]
    fn two_way_raid_doubles_capacity_and_sums_power() {
        let r = raid0(
            "HDD RAID 0",
            &hdd_spec(),
            &hdd_profile(),
            2,
            RaidController::PAPER,
            Raid0Scaling::CALIBRATED,
            &CostModel::PAPER,
        );
        assert_eq!(r.devices.len(), 2);
        assert!((r.capacity_gb - 1000.0).abs() < 1e-9);
        assert!((r.total_power_watts() - (2.0 * 8.3 + 8.25)).abs() < 1e-9);
        assert!((r.total_purchase_cents() - (2.0 * 3_400.0 + 11_000.0)).abs() < 1e-9);
    }

    #[test]
    fn analytic_price_close_to_published_hdd_raid0() {
        let r = raid0(
            "HDD RAID 0",
            &hdd_spec(),
            &hdd_profile(),
            2,
            RaidController::PAPER,
            Raid0Scaling::CALIBRATED,
            &CostModel::PAPER,
        );
        // Published Table 1: 8.19e-4 cents/GB/hour. The analytic model lands
        // within 5% (the residual is the paper's unstated idle/active power
        // weighting).
        let published = 8.19e-4;
        let err = (r.price_cents_per_gb_hour - published).abs() / published;
        assert!(
            err < 0.05,
            "price {} vs {published}",
            r.price_cents_per_gb_hour
        );
    }

    #[test]
    fn raid_profile_is_faster_than_member() {
        let r = raid0(
            "HDD RAID 0",
            &hdd_spec(),
            &hdd_profile(),
            2,
            RaidController::PAPER,
            Raid0Scaling::CALIBRATED,
            &CostModel::PAPER,
        );
        let m = hdd_profile();
        for io in crate::IO_TYPES {
            assert!(
                r.profile.latency_ms(io, 1) < m.latency_ms(io, 1),
                "{io} should improve under RAID 0"
            );
        }
    }

    #[test]
    fn analytic_seq_read_close_to_measured() {
        let r = raid0(
            "HDD RAID 0",
            &hdd_spec(),
            &hdd_profile(),
            2,
            RaidController::PAPER,
            Raid0Scaling::CALIBRATED,
            &CostModel::PAPER,
        );
        // Measured HDD RAID 0 SR at c=1 is 0.049 ms; the calibrated analytic
        // model must land within 20%.
        let sr = r.profile.latency_ms(IoType::SeqRead, 1);
        assert!((sr - 0.049).abs() / 0.049 < 0.2, "SR {sr}");
    }

    #[test]
    fn four_way_scales_further_than_two_way() {
        let two = raid0(
            "2w",
            &hdd_spec(),
            &hdd_profile(),
            2,
            RaidController::PAPER,
            Raid0Scaling::CALIBRATED,
            &CostModel::PAPER,
        );
        let four = raid0(
            "4w",
            &hdd_spec(),
            &hdd_profile(),
            4,
            RaidController::PAPER,
            Raid0Scaling::CALIBRATED,
            &CostModel::PAPER,
        );
        assert!(four.capacity_gb > two.capacity_gb);
        assert!(
            four.profile.latency_ms(IoType::SeqRead, 1)
                < two.profile.latency_ms(IoType::SeqRead, 1)
        );
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn one_member_raid_panics() {
        let _ = raid0(
            "bad",
            &hdd_spec(),
            &hdd_profile(),
            1,
            RaidController::PAPER,
            Raid0Scaling::CALIBRATED,
            &CostModel::PAPER,
        );
    }
}
