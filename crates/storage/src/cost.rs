//! The TOC price model: amortized purchase cost plus run-time energy.
//!
//! §2.1 and §4.1 of the paper: the storage price of a class, in
//! **cents/GB/hour**, distributes the purchase cost of the device(s) (plus a
//! RAID controller when applicable) over 36 months and adds electricity at
//! $0.07/kWh applied to the device's average power draw. Table 1's first row
//! is produced by exactly this computation; [`catalog`](crate::catalog) tests
//! verify that our model recomputes those published values.

use serde::{Deserialize, Serialize};

/// Parameters of the amortization + energy price model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Period over which the purchase cost is distributed, in months.
    /// The paper uses 36.
    pub amortization_months: f64,
    /// Electricity price in cents per kWh. The paper uses 7.0 ($0.07/kWh,
    /// citing Hamilton's CEMS cost model).
    pub energy_cents_per_kwh: f64,
    /// Average hours per month used to convert months to hours. We use the
    /// mean Gregorian month (730 h); the paper does not state its convention,
    /// and recomputing Table 1 shows agreement to within rounding with this
    /// choice.
    pub hours_per_month: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::PAPER
    }
}

impl CostModel {
    /// The paper's published parameters.
    pub const PAPER: CostModel = CostModel {
        amortization_months: 36.0,
        energy_cents_per_kwh: 7.0,
        hours_per_month: 730.0,
    };

    /// Total amortization window in hours.
    pub fn amortization_hours(&self) -> f64 {
        self.amortization_months * self.hours_per_month
    }

    /// Hourly cost (cents/hour) of owning and powering hardware with the
    /// given total purchase price (cents) and average power draw (watts).
    pub fn hourly_cost_cents(&self, purchase_cents: f64, power_watts: f64) -> f64 {
        let amortized = purchase_cents / self.amortization_hours();
        let energy = power_watts / 1000.0 * self.energy_cents_per_kwh;
        amortized + energy
    }

    /// Storage price in cents/GB/hour for a device of the given capacity —
    /// the unit in which Table 1 row 1 and all layout costs are expressed.
    pub fn price_cents_per_gb_hour(
        &self,
        purchase_cents: f64,
        power_watts: f64,
        capacity_gb: f64,
    ) -> f64 {
        assert!(capacity_gb > 0.0, "capacity must be positive");
        self.hourly_cost_cents(purchase_cents, power_watts) / capacity_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_window() {
        let m = CostModel::PAPER;
        assert!((m.amortization_hours() - 26280.0).abs() < 1e-9);
    }

    #[test]
    fn hourly_cost_splits_into_amortization_and_energy() {
        let m = CostModel::PAPER;
        // Zero-power device: pure amortization.
        let c = m.hourly_cost_cents(26280.0, 0.0);
        assert!((c - 1.0).abs() < 1e-12);
        // Zero-cost device: pure energy. 1 kW at 7 c/kWh = 7 c/h.
        let c = m.hourly_cost_cents(0.0, 1000.0);
        assert!((c - 7.0).abs() < 1e-12);
    }

    /// Recompute the paper's L-SSD price: $253 purchase, 2.5 W, 128 GB
    /// → 7.65e-3 cents/GB/hour (Table 1).
    #[test]
    fn reproduces_published_lssd_price() {
        let m = CostModel::PAPER;
        let p = m.price_cents_per_gb_hour(25_300.0, 2.5, 128.0);
        let published = 7.65e-3;
        assert!(
            (p - published).abs() / published < 0.01,
            "computed {p}, published {published}"
        );
    }

    /// Recompute the paper's H-SSD price: $3550 purchase, 10.5 W, 80 GB
    /// → 1.69e-1 cents/GB/hour (Table 1).
    #[test]
    fn reproduces_published_hssd_price() {
        let m = CostModel::PAPER;
        let p = m.price_cents_per_gb_hour(355_000.0, 10.5, 80.0);
        let published = 1.69e-1;
        assert!(
            (p - published).abs() / published < 0.01,
            "computed {p}, published {published}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        CostModel::PAPER.price_cents_per_gb_hour(100.0, 1.0, 0.0);
    }

    #[test]
    fn price_scales_linearly_with_purchase_and_inversely_with_capacity() {
        let m = CostModel::PAPER;
        let base = m.price_cents_per_gb_hour(100_000.0, 0.0, 50.0);
        // Doubling the purchase price doubles the (pure-amortization) price.
        let double = m.price_cents_per_gb_hour(200_000.0, 0.0, 50.0);
        assert!((double - 2.0 * base).abs() < 1e-12);
        // Doubling the capacity halves the per-GB price.
        let spread = m.price_cents_per_gb_hour(100_000.0, 0.0, 100.0);
        assert!((spread - base / 2.0).abs() < 1e-12);
    }

    #[test]
    fn hourly_cost_is_additive() {
        // Owning two devices costs the sum of owning each: the model is
        // linear in both purchase price and power draw.
        let m = CostModel::PAPER;
        let a = m.hourly_cost_cents(25_300.0, 2.5);
        let b = m.hourly_cost_cents(355_000.0, 10.5);
        let combined = m.hourly_cost_cents(25_300.0 + 355_000.0, 2.5 + 10.5);
        assert!((combined - (a + b)).abs() < 1e-12);
    }

    #[test]
    fn longer_amortization_lowers_price_but_not_energy() {
        let short = CostModel {
            amortization_months: 12.0,
            ..CostModel::PAPER
        };
        let long = CostModel {
            amortization_months: 60.0,
            ..CostModel::PAPER
        };
        // Purchase-dominated device: longer amortization is cheaper.
        assert!(long.hourly_cost_cents(100_000.0, 0.0) < short.hourly_cost_cents(100_000.0, 0.0));
        // Energy-only device: amortization window is irrelevant.
        assert!(
            (long.hourly_cost_cents(0.0, 10.0) - short.hourly_cost_cents(0.0, 10.0)).abs() < 1e-12
        );
    }
}
