//! Per-device-pair contention for bulk transfers.
//!
//! A migration copies an object off one storage class and onto another as a
//! single bulk stream (`StorageClass::bulk_read_seconds` on the source,
//! [`bulk_write_seconds`](crate::StorageClass::bulk_write_seconds) on the
//! target — Table 1's single-thread anchors). While that stream runs it
//! *occupies* both devices: a second transfer touching either class would
//! halve both streams' bandwidth and gain nothing, so the scheduler never
//! co-schedules two transfers that share a class. Transfers on **disjoint**
//! `(source, target)` pairs contend for nothing and overlap freely — that
//! overlap is what turns a flat sequential copy list into parallel waves
//! whose makespan is the critical path, not the sum.
//!
//! [`TransferLanes`] is the occupancy tracker behind that rule: one boolean
//! lane per storage class, claimed and released as transfers are packed
//! into a wave. It is deliberately panic-free — out-of-range class ids are
//! reported as "never free" rather than aborting, because the planner above
//! it runs inside daemon ticks that must not die on user-supplied layouts.
//!
//! ```
//! use dot_storage::{transfer::TransferLanes, ClassId};
//!
//! let mut lanes = TransferLanes::new(3);
//! assert!(lanes.try_claim_pair(ClassId(0), ClassId(2))); // HDD -> H-SSD
//! assert!(!lanes.try_claim_pair(ClassId(2), ClassId(1))); // H-SSD is busy
//! assert!(lanes.try_claim_pair(ClassId(1), ClassId(1))); // disjoint pair
//! lanes.clear(); // next wave
//! assert!(lanes.try_claim_pair(ClassId(2), ClassId(1)));
//! ```

use crate::device::ClassId;

/// Occupancy of every storage class during one scheduling wave: each class
/// is a *lane* that at most one bulk transfer may hold at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferLanes {
    busy: Vec<bool>,
}

impl TransferLanes {
    /// All lanes free, one per storage class of the pool.
    pub fn new(classes: usize) -> Self {
        TransferLanes {
            busy: vec![false; classes],
        }
    }

    /// Number of lanes (storage classes).
    pub fn len(&self) -> usize {
        self.busy.len()
    }

    /// True when the tracker has no lanes at all.
    pub fn is_empty(&self) -> bool {
        self.busy.is_empty()
    }

    /// Is this class currently free? Out-of-range ids are never free — the
    /// caller fed a foreign id, and "cannot schedule" is the safe answer.
    pub fn is_free(&self, class: ClassId) -> bool {
        self.busy.get(class.0).is_some_and(|b| !b)
    }

    /// Claim one transfer's `(source, target)` pair if **both** lanes are
    /// free (a transfer from a class onto itself needs only the one lane).
    /// Returns `false` — claiming nothing — when either lane is busy or
    /// out of range.
    pub fn try_claim_pair(&mut self, source: ClassId, target: ClassId) -> bool {
        self.try_claim_set(&[source, target])
    }

    /// Atomically claim every class in `classes` (duplicates collapse to
    /// one lane): all lanes are claimed, or — if any is busy or out of
    /// range — none are. This is the group-move shape: one migration step
    /// relocates a whole object group, occupying each distinct source and
    /// target class of its objects for the step's duration.
    pub fn try_claim_set(&mut self, classes: &[ClassId]) -> bool {
        if !classes
            .iter()
            .all(|&c| self.busy.get(c.0).is_some_and(|b| !b))
        {
            return false;
        }
        for &c in classes {
            self.busy[c.0] = true;
        }
        true
    }

    /// Release every lane: the wave completed, the next one packs fresh.
    pub fn clear(&mut self) {
        self.busy.iter_mut().for_each(|b| *b = false);
    }

    /// The classes currently held by in-flight transfers, in id order.
    pub fn busy_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.busy
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| ClassId(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_pairs_overlap_shared_classes_do_not() {
        let mut lanes = TransferLanes::new(4);
        assert!(lanes.try_claim_pair(ClassId(0), ClassId(1)));
        // Sharing either endpoint conflicts.
        assert!(!lanes.try_claim_pair(ClassId(0), ClassId(2)));
        assert!(!lanes.try_claim_pair(ClassId(2), ClassId(1)));
        // A fully disjoint pair coexists.
        assert!(lanes.try_claim_pair(ClassId(2), ClassId(3)));
        assert_eq!(
            lanes.busy_classes().collect::<Vec<_>>(),
            vec![ClassId(0), ClassId(1), ClassId(2), ClassId(3)]
        );
    }

    #[test]
    fn claim_set_is_atomic() {
        let mut lanes = TransferLanes::new(3);
        assert!(lanes.try_claim_pair(ClassId(1), ClassId(1)));
        // One busy member rejects the whole set and claims nothing.
        assert!(!lanes.try_claim_set(&[ClassId(0), ClassId(1), ClassId(2)]));
        assert!(lanes.is_free(ClassId(0)));
        assert!(lanes.is_free(ClassId(2)));
        assert!(lanes.try_claim_set(&[ClassId(0), ClassId(2)]));
    }

    #[test]
    fn out_of_range_ids_are_never_free_and_never_panic() {
        let mut lanes = TransferLanes::new(2);
        assert!(!lanes.is_free(ClassId(7)));
        assert!(!lanes.try_claim_pair(ClassId(0), ClassId(7)));
        // The in-range half of the rejected pair stays unclaimed.
        assert!(lanes.is_free(ClassId(0)));
    }

    #[test]
    fn clear_opens_the_next_wave() {
        let mut lanes = TransferLanes::new(2);
        assert!(lanes.try_claim_pair(ClassId(0), ClassId(1)));
        assert!(!lanes.try_claim_pair(ClassId(0), ClassId(1)));
        lanes.clear();
        assert!(lanes.try_claim_pair(ClassId(0), ClassId(1)));
    }

    #[test]
    fn same_class_transfer_needs_one_lane() {
        let mut lanes = TransferLanes::new(2);
        assert!(lanes.try_claim_pair(ClassId(0), ClassId(0)));
        assert!(lanes.is_free(ClassId(1)));
        assert!(!lanes.is_free(ClassId(0)));
    }
}
