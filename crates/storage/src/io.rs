//! The four canonical DBMS I/O access patterns and per-pattern counters.
//!
//! The paper (§3.3) models all query I/O as a mix of sequential read (SR),
//! random read (RR), sequential write (SW) and random write (RW) operations,
//! following the methodology of Canim et al.'s Object Advisor. Every layer of
//! this reproduction — device profiles, plan cost models, workload profiles,
//! DOT's priority scores — is expressed over this four-element set `R`.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut, Mul};

/// One of the four I/O access patterns of the paper's model (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoType {
    /// Sequential read — table scans, bulk reads (`SR`). Unit: one page read.
    SeqRead,
    /// Random read — index probes, unclustered lookups (`RR`). Unit: one page read.
    RandRead,
    /// Sequential write — appends, bulk loads (`SW`). Unit: one row written,
    /// matching the paper's Table 1 which reports SW/RW in ms *per row*.
    SeqWrite,
    /// Random write — in-place updates (`RW`). Unit: one row written.
    RandWrite,
}

/// All four I/O types, in the order used throughout tables and arrays.
pub const IO_TYPES: [IoType; 4] = [
    IoType::SeqRead,
    IoType::RandRead,
    IoType::SeqWrite,
    IoType::RandWrite,
];

impl IoType {
    /// Dense index of this type into `[f64; 4]`-shaped tables.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            IoType::SeqRead => 0,
            IoType::RandRead => 1,
            IoType::SeqWrite => 2,
            IoType::RandWrite => 3,
        }
    }

    /// Short label as used in the paper ("SR", "RR", "SW", "RW").
    pub const fn label(self) -> &'static str {
        match self {
            IoType::SeqRead => "SR",
            IoType::RandRead => "RR",
            IoType::SeqWrite => "SW",
            IoType::RandWrite => "RW",
        }
    }

    /// True for the two read patterns.
    #[inline]
    pub const fn is_read(self) -> bool {
        matches!(self, IoType::SeqRead | IoType::RandRead)
    }

    /// True for the two random patterns.
    #[inline]
    pub const fn is_random(self) -> bool {
        matches!(self, IoType::RandRead | IoType::RandWrite)
    }
}

impl std::fmt::Display for IoType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-pattern vector of I/O operation counts: `χ_r` for `r ∈ {SR,RR,SW,RW}`.
///
/// Counts are `f64` because profiles are produced both by test runs (integer
/// counts) and by optimizer estimates (fractional expected counts), and
/// because workload profiles are averaged over query repetitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IoCounts {
    counts: [f64; 4],
}

impl IoCounts {
    /// The zero vector.
    pub const ZERO: IoCounts = IoCounts { counts: [0.0; 4] };

    /// Build from explicit per-pattern counts.
    pub fn new(seq_read: f64, rand_read: f64, seq_write: f64, rand_write: f64) -> Self {
        IoCounts {
            counts: [seq_read, rand_read, seq_write, rand_write],
        }
    }

    /// A vector with a single nonzero component.
    pub fn only(io: IoType, count: f64) -> Self {
        let mut c = IoCounts::ZERO;
        c[io] = count;
        c
    }

    /// Total number of operations across all four patterns.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Sum of the two read-pattern counts.
    pub fn reads(&self) -> f64 {
        self[IoType::SeqRead] + self[IoType::RandRead]
    }

    /// Sum of the two write-pattern counts.
    pub fn writes(&self) -> f64 {
        self[IoType::SeqWrite] + self[IoType::RandWrite]
    }

    /// True if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0.0)
    }

    /// Iterate `(IoType, count)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (IoType, f64)> + '_ {
        IO_TYPES.iter().map(move |&t| (t, self[t]))
    }

    /// Component-wise scale by `factor` (e.g. query repetition counts).
    pub fn scaled(&self, factor: f64) -> IoCounts {
        IoCounts {
            counts: [
                self.counts[0] * factor,
                self.counts[1] * factor,
                self.counts[2] * factor,
                self.counts[3] * factor,
            ],
        }
    }
}

impl Index<IoType> for IoCounts {
    type Output = f64;
    #[inline]
    fn index(&self, io: IoType) -> &f64 {
        &self.counts[io.index()]
    }
}

impl IndexMut<IoType> for IoCounts {
    #[inline]
    fn index_mut(&mut self, io: IoType) -> &mut f64 {
        &mut self.counts[io.index()]
    }
}

impl Add for IoCounts {
    type Output = IoCounts;
    fn add(self, rhs: IoCounts) -> IoCounts {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for IoCounts {
    fn add_assign(&mut self, rhs: IoCounts) {
        for i in 0..4 {
            self.counts[i] += rhs.counts[i];
        }
    }
}

impl Mul<f64> for IoCounts {
    type Output = IoCounts;
    fn mul(self, rhs: f64) -> IoCounts {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_type_indices_are_dense_and_distinct() {
        let mut seen = [false; 4];
        for t in IO_TYPES {
            assert!(!seen[t.index()], "duplicate index for {t}");
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labels_match_paper_abbreviations() {
        assert_eq!(IoType::SeqRead.label(), "SR");
        assert_eq!(IoType::RandRead.label(), "RR");
        assert_eq!(IoType::SeqWrite.label(), "SW");
        assert_eq!(IoType::RandWrite.label(), "RW");
    }

    #[test]
    fn read_write_random_predicates() {
        assert!(IoType::SeqRead.is_read());
        assert!(IoType::RandRead.is_read());
        assert!(!IoType::SeqWrite.is_read());
        assert!(IoType::RandRead.is_random());
        assert!(IoType::RandWrite.is_random());
        assert!(!IoType::SeqRead.is_random());
    }

    #[test]
    fn counts_arithmetic() {
        let a = IoCounts::new(1.0, 2.0, 3.0, 4.0);
        let b = IoCounts::only(IoType::RandRead, 10.0);
        let c = a + b;
        assert_eq!(c[IoType::RandRead], 12.0);
        assert_eq!(c.total(), 20.0);
        assert_eq!(c.reads(), 13.0);
        assert_eq!(c.writes(), 7.0);
        let d = c * 2.0;
        assert_eq!(d.total(), 40.0);
    }

    #[test]
    fn zero_detection() {
        assert!(IoCounts::ZERO.is_zero());
        assert!(!IoCounts::only(IoType::SeqWrite, 1e-9).is_zero());
    }

    #[test]
    fn iter_yields_canonical_order() {
        let a = IoCounts::new(1.0, 2.0, 3.0, 4.0);
        let collected: Vec<_> = a.iter().collect();
        assert_eq!(collected[0], (IoType::SeqRead, 1.0));
        assert_eq!(collected[3], (IoType::RandWrite, 4.0));
    }
}
