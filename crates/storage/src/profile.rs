//! Per-device I/O service-time profiles under varying degrees of concurrency.
//!
//! The paper benchmarks each storage class *from inside the DBMS* (§3.5.1)
//! and reports, for every pattern, the effective time of one I/O operation at
//! a degree of concurrency of 1 and of 300 (Table 1). DOT then uses the
//! concurrency level appropriate to the workload (1 for the DSS runs, 300 for
//! TPC-C). We keep the same two anchors per device and interpolate between
//! them in log(concurrency) space, which matches the empirically sub-linear
//! way queueing effects build up in the published numbers.

use crate::io::{IoCounts, IoType};
use serde::{Deserialize, Serialize};

/// Concurrency anchor used by the paper's low-concurrency measurements.
pub const CONCURRENCY_LOW: u32 = 1;
/// Concurrency anchor used by the paper's OLTP measurements.
pub const CONCURRENCY_HIGH: u32 = 300;

/// Effective service times (ms per I/O operation) for the four patterns at
/// the two measured concurrency anchors.
///
/// `at_c1[i]` / `at_c300[i]` are indexed by [`IoType::index`]. Read patterns
/// are per page; write patterns are per row, exactly as in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoProfile {
    /// ms per operation with a single DBMS thread.
    pub at_c1: [f64; 4],
    /// ms per operation with 300 concurrent DBMS threads.
    pub at_c300: [f64; 4],
}

impl IoProfile {
    /// Build a profile from `(SR, RR, SW, RW)` tuples at the two anchors.
    pub fn from_anchors(at_c1: [f64; 4], at_c300: [f64; 4]) -> Self {
        IoProfile { at_c1, at_c300 }
    }

    /// A profile whose service time is identical at both anchors (no
    /// concurrency sensitivity). Useful for synthetic devices and tests.
    pub fn flat(latencies: [f64; 4]) -> Self {
        IoProfile {
            at_c1: latencies,
            at_c300: latencies,
        }
    }

    /// Effective time of one I/O of type `io` (ms) at the given degree of
    /// concurrency.
    ///
    /// Between the anchors we interpolate linearly in `ln(concurrency)`; the
    /// anchors themselves are returned exactly, and levels outside `[1, 300]`
    /// clamp to the nearest anchor. Log-space interpolation keeps the model
    /// monotone between the anchors and avoids over-penalising moderate
    /// concurrency, consistent with the measured behaviour (some devices get
    /// *faster* per-request at high concurrency thanks to request overlap —
    /// e.g. the HDD's random reads — and some get slower, e.g. the L-SSD's
    /// random writes; both directions are preserved).
    pub fn latency_ms(&self, io: IoType, concurrency: u32) -> f64 {
        let i = io.index();
        let lo = self.at_c1[i];
        let hi = self.at_c300[i];
        if concurrency <= CONCURRENCY_LOW {
            return lo;
        }
        if concurrency >= CONCURRENCY_HIGH {
            return hi;
        }
        let t = (concurrency as f64).ln() / (CONCURRENCY_HIGH as f64).ln();
        lo + (hi - lo) * t
    }

    /// Total service time (ms) of an [`IoCounts`] vector at the given
    /// concurrency: `Σ_r χ_r · τ_r(c)` — the paper's I/O time share (Eq. 1)
    /// restricted to a single device.
    pub fn service_time_ms(&self, counts: &IoCounts, concurrency: u32) -> f64 {
        counts
            .iter()
            .map(|(io, n)| n * self.latency_ms(io, concurrency))
            .sum()
    }

    /// Ratio of random-read to sequential-read latency — the "random access
    /// penalty" that drives seq-scan vs index-scan plan choices.
    pub fn random_read_penalty(&self, concurrency: u32) -> f64 {
        self.latency_ms(IoType::RandRead, concurrency)
            / self.latency_ms(IoType::SeqRead, concurrency)
    }

    /// Validate physical plausibility: every latency strictly positive.
    pub fn validate(&self) -> Result<(), crate::StorageError> {
        for (anchor, name) in [(&self.at_c1, "c=1"), (&self.at_c300, "c=300")] {
            for (i, &v) in anchor.iter().enumerate() {
                if v <= 0.0 || !v.is_finite() {
                    return Err(crate::StorageError::InvalidSpec(format!(
                        "latency[{i}] at {name} must be positive and finite, got {v}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IoProfile {
        // Shaped like the paper's HDD column: RR improves under concurrency,
        // SR and writes degrade.
        IoProfile::from_anchors([0.072, 13.32, 0.012, 10.15], [0.174, 8.903, 0.039, 8.124])
    }

    #[test]
    fn anchors_are_exact() {
        let p = sample();
        assert_eq!(p.latency_ms(IoType::SeqRead, 1), 0.072);
        assert_eq!(p.latency_ms(IoType::SeqRead, 300), 0.174);
        assert_eq!(p.latency_ms(IoType::RandRead, 300), 8.903);
    }

    #[test]
    fn clamps_outside_measured_range() {
        let p = sample();
        assert_eq!(p.latency_ms(IoType::RandRead, 0), 13.32);
        assert_eq!(p.latency_ms(IoType::RandRead, 100_000), 8.903);
    }

    #[test]
    fn interpolation_is_monotone_between_anchors() {
        let p = sample();
        let mut prev = p.latency_ms(IoType::SeqRead, 1);
        for c in [2, 5, 10, 30, 100, 200, 299] {
            let cur = p.latency_ms(IoType::SeqRead, c);
            assert!(cur >= prev, "SR latency should not decrease with c");
            prev = cur;
        }
        // And the decreasing direction (HDD random reads) is preserved too.
        let mut prev = p.latency_ms(IoType::RandRead, 1);
        for c in [2, 5, 10, 30, 100, 200, 299] {
            let cur = p.latency_ms(IoType::RandRead, c);
            assert!(cur <= prev, "RR latency should not increase with c");
            prev = cur;
        }
    }

    #[test]
    fn interpolation_stays_within_anchor_envelope() {
        let p = sample();
        for io in crate::IO_TYPES {
            let (a, b) = (p.latency_ms(io, 1), p.latency_ms(io, 300));
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            for c in [3, 17, 42, 150, 250] {
                let v = p.latency_ms(io, c);
                assert!(v >= lo && v <= hi, "{io} at c={c}: {v} outside [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn service_time_accumulates_linearly() {
        let p = IoProfile::flat([1.0, 10.0, 2.0, 20.0]);
        let counts = IoCounts::new(100.0, 10.0, 50.0, 5.0);
        let t = p.service_time_ms(&counts, 1);
        assert!((t - (100.0 + 100.0 + 100.0 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn random_read_penalty_matches_ratio() {
        let p = sample();
        let pen = p.random_read_penalty(1);
        assert!((pen - 13.32 / 0.072).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_nonpositive_latency() {
        let mut p = sample();
        p.at_c1[2] = 0.0;
        assert!(p.validate().is_err());
        p.at_c1[2] = f64::NAN;
        assert!(p.validate().is_err());
        assert!(sample().validate().is_ok());
    }
}
