//! Property suite for dominance pruning (`toc::ObjectiveBound`): for
//! random problems, the pruned greedy sweep and the pruned exhaustive
//! search return results **bit-identical** to their estimate-everything
//! counterparts — same layout, same estimate, same investigated count —
//! because the cut only skips candidates whose objective lower bound
//! already meets the incumbent and acceptance is strictly-better-only.

use dot_core::constraints;
use dot_core::problem::Problem;
use dot_core::{dot, exhaustive};
use dot_dbms::query::{Op, QuerySpec, ReadOp, Rel, ScanSpec, UpdateOp};
use dot_dbms::{EngineConfig, SchemaBuilder};
use dot_profiler::{profile_workload, ProfileSource};
use dot_storage::catalog;
use dot_workloads::{SlaSpec, Workload};
use proptest::prelude::*;

/// Random schema: 1–3 tables, each with a primary index and 0–1 secondary.
fn arb_schema() -> impl Strategy<Value = dot_dbms::Schema> {
    proptest::collection::vec(
        (
            1_000.0..5_000_000.0f64, // rows
            40.0..400.0f64,          // row bytes
            proptest::bool::ANY,     // secondary index?
        ),
        1..3,
    )
    .prop_map(|tables| {
        let mut b = SchemaBuilder::new("prop");
        for (i, (rows, bytes, secondary)) in tables.into_iter().enumerate() {
            b = b.table(&format!("t{i}"), rows, bytes).primary_index(8.0);
            if secondary {
                b = b.index(&format!("t{i}_sec"), 8.0);
            }
        }
        b.build()
    })
}

/// A mixed read/write workload (one indexed read per table plus one
/// update), weighted, in either metric.
fn mixed_workload(schema: &dot_dbms::Schema, sel: f64, weights: &[f64], oltp: bool) -> Workload {
    let mut queries: Vec<QuerySpec> = schema
        .tables()
        .iter()
        .map(|t| {
            let pk = schema.primary_index_of(t.id).expect("pk").id;
            QuerySpec::read(
                &format!("q_{}", t.name),
                ReadOp::of(Rel::Scan(ScanSpec::indexed(t.id, sel, pk))),
            )
        })
        .collect();
    let t0 = &schema.tables()[0];
    let pk0 = schema.primary_index_of(t0.id).expect("pk").id;
    queries.push(QuerySpec::transaction(
        "w_0",
        vec![Op::Update(UpdateOp {
            table: t0.id,
            rows: 50.0,
            via: Some(pk0),
            updates_indexed_key: false,
        })],
    ));
    for (q, w) in queries.iter_mut().zip(weights) {
        q.weight = *w;
    }
    if oltp {
        Workload::oltp("prop", queries, 8, 100.0)
    } else {
        Workload::dss("prop", queries)
    }
}

/// Outcomes must agree on everything except the pruned counter itself
/// (and the wall clock, which is never compared).
fn assert_same_dot(pruned: &dot::DotOutcome, plain: &dot::DotOutcome) {
    assert_eq!(pruned.layout, plain.layout);
    assert_eq!(pruned.estimate, plain.estimate);
    assert_eq!(pruned.layouts_investigated, plain.layouts_investigated);
    assert_eq!(plain.layouts_pruned, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DSS: the greedy sweep with the dominance cut returns exactly what
    /// the estimate-everything sweep returns, at any SLA.
    #[test]
    fn pruned_dot_sweep_is_bit_identical_dss(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        weights in proptest::collection::vec(0.1..10.0f64, 4),
        sla in 0.05..1.0f64,
    ) {
        let pool = catalog::box2();
        let w = mixed_workload(&schema, sel, &weights, false);
        let p = Problem::new(&schema, &pool, &w, SlaSpec::relative(sla), EngineConfig::dss());
        let cons = constraints::derive(&p);
        let prof = profile_workload(&w, &schema, &pool, &p.cfg, ProfileSource::Estimate);
        let toc = dot_core::toc::Estimator::direct();
        let with = dot::optimize_with_pruning(&p, &prof, &cons, &toc, true);
        let without = dot::optimize_with_pruning(&p, &prof, &cons, &toc, false);
        assert_same_dot(&with, &without);
    }

    /// OLTP: on throughput workloads the bound is the layout cost itself
    /// (exact), so the cut fires hard — and still changes nothing.
    #[test]
    fn pruned_dot_sweep_is_bit_identical_oltp(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        weights in proptest::collection::vec(0.1..10.0f64, 4),
        sla in 0.05..1.0f64,
    ) {
        let pool = catalog::box2();
        let w = mixed_workload(&schema, sel, &weights, true);
        let p = Problem::new(&schema, &pool, &w, SlaSpec::relative(sla), EngineConfig::oltp());
        let cons = constraints::derive(&p);
        let prof = profile_workload(&w, &schema, &pool, &p.cfg, ProfileSource::Estimate);
        let toc = dot_core::toc::Estimator::direct();
        let with = dot::optimize_with_pruning(&p, &prof, &cons, &toc, true);
        let without = dot::optimize_with_pruning(&p, &prof, &cons, &toc, false);
        assert_same_dot(&with, &without);
    }

    /// Exhaustive search: the pruned enumeration finds the identical
    /// optimum over the identical candidate count, in both metrics.
    #[test]
    fn pruned_exhaustive_search_is_bit_identical(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        weights in proptest::collection::vec(0.1..10.0f64, 4),
        sla in 0.05..1.0f64,
        oltp in proptest::bool::ANY,
    ) {
        let pool = catalog::box2();
        let w = mixed_workload(&schema, sel, &weights, oltp);
        let cfg = if oltp { EngineConfig::oltp() } else { EngineConfig::dss() };
        let p = Problem::new(&schema, &pool, &w, SlaSpec::relative(sla), cfg);
        let cons = constraints::derive(&p);
        let toc = dot_core::toc::Estimator::direct();
        let with = exhaustive::exhaustive_search_with_pruning(&p, &cons, &toc, true);
        let without = exhaustive::exhaustive_search_with_pruning(&p, &cons, &toc, false);
        prop_assert_eq!(&with.layout, &without.layout);
        prop_assert_eq!(&with.estimate, &without.estimate);
        prop_assert_eq!(with.layouts_investigated, without.layouts_investigated);
        prop_assert_eq!(without.layouts_pruned, 0);
    }
}

/// The cut must actually fire on the paper's own workloads — a bound that
/// never prunes would pass every equivalence test above while buying
/// nothing. (CI enforces the same invariant on the distilled benchmark
/// numbers.)
#[test]
fn pruning_fires_on_paper_workloads() {
    // DSS / response time: TPC-H subset, as in the conformance suite.
    let s = dot_workloads::tpch::subset_schema(2.0);
    let w = dot_workloads::tpch::subset_workload(&s);
    let pool = catalog::box2();
    let p = Problem::new(&s, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
    let cons = constraints::derive(&p);
    let toc = dot_core::toc::Estimator::direct();
    let es = exhaustive::exhaustive_search_with_pruning(&p, &cons, &toc, true);
    assert!(
        es.layouts_pruned > 0,
        "ES pruned nothing on the TPC-H subset"
    );

    // OLTP / throughput: TPC-C, where the additive search's suffix bound
    // and the greedy sweep's exact cost bound both cut.
    let s = dot_workloads::tpcc::schema(2.0);
    let w = dot_workloads::tpcc::workload(&s);
    let p = Problem::new(&s, &pool, &w, SlaSpec::relative(0.25), EngineConfig::oltp());
    let cons = constraints::derive(&p);
    let prof = profile_workload(&w, &s, &pool, &p.cfg, ProfileSource::Estimate);
    let es = exhaustive::exhaustive_search_additive(&p, &prof, &cons);
    assert!(es.layouts_pruned > 0, "additive ES pruned nothing on TPC-C");
    let dot_out = dot::optimize_with_pruning(&p, &prof, &cons, &toc, true);
    assert!(
        dot_out.layouts_pruned > 0,
        "DOT pruned nothing on TPC-C ({} investigated)",
        dot_out.layouts_investigated
    );
}
