//! Smoke tests running each of the `examples/` end-to-end via
//! `cargo run --example`, so the documented quickstart commands keep
//! working. Examples are built in release mode (as their doc headers
//! instruct) and share the workspace target directory, so after
//! `cargo build --release` these tests only pay each example's runtime
//! (sub-second apiece).

use std::process::Command;

fn run_example(name: &str) -> String {
    run_example_with(name, &[])
}

fn run_example_with(name: &str, args: &[&str]) -> String {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.args(["run", "--quiet", "--release", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"));
    if !args.is_empty() {
        cmd.arg("--").args(args);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("spawn cargo run --example {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} failed with {:?}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn quickstart_runs() {
    let text = run_example("quickstart");
    assert!(text.contains("TOC:"), "output:\n{text}");
    assert!(text.contains("PSR"), "output:\n{text}");
}

#[test]
fn dss_provisioning_runs() {
    // Scale factor 1 keeps the smoke test fast; the default is 20.
    let text = run_example_with("dss_provisioning", &["1"]);
    assert!(text.contains("TPC-H SF 1"), "output:\n{text}");
}

#[test]
fn oltp_provisioning_runs() {
    let text = run_example("oltp_provisioning");
    assert!(text.contains("TPC-C"), "output:\n{text}");
}

#[test]
fn capacity_planning_runs() {
    let text = run_example("capacity_planning");
    assert!(!text.trim().is_empty(), "capacity_planning printed nothing");
}

#[test]
fn multi_tenant_runs() {
    let text = run_example("multi_tenant");
    assert!(!text.trim().is_empty(), "multi_tenant printed nothing");
}

#[test]
fn fleet_provisioning_runs() {
    let text = run_example("fleet_provisioning");
    assert!(
        text.contains("provisioned 64 of 64 tenants"),
        "output:\n{text}"
    );
    assert!(text.contains("hit rate"), "output:\n{text}");
}

#[test]
fn workload_drift_runs() {
    let text = run_example("workload_drift");
    assert!(text.contains("SLA-violating"), "output:\n{text}");
    assert!(text.contains("break-even"), "output:\n{text}");
    assert!(text.contains("identity plan"), "output:\n{text}");
}

#[test]
fn online_controller_runs() {
    let text = run_example("online_controller");
    assert!(text.contains("TRIGGERED"), "output:\n{text}");
    assert!(text.contains("APPLIED"), "output:\n{text}");
    assert!(text.contains("no flap"), "output:\n{text}");
}
