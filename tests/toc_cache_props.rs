//! Property suite for `toc::CachedEstimator`: for random problems and
//! layouts, cached estimates are **bit-identical** to the uncached
//! `estimate_toc` — on the miss path, the hit path, after eviction has
//! flushed entries, across concurrent threads sharing one cache, and when
//! several distinct problems share one cache.

use dot_core::problem::{LayoutCostModel, Problem};
use dot_core::toc::{self, CachedEstimator};
use dot_dbms::query::{QuerySpec, ReadOp, Rel, ScanSpec};
use dot_dbms::{EngineConfig, Layout, SchemaBuilder};
use dot_storage::{catalog, ClassId};
use dot_workloads::{SlaSpec, Workload};
use proptest::prelude::*;

/// Random schema: 1–4 tables, each with a primary index and 0–1 secondary.
fn arb_schema() -> impl Strategy<Value = dot_dbms::Schema> {
    proptest::collection::vec(
        (
            1_000.0..5_000_000.0f64, // rows
            40.0..400.0f64,          // row bytes
            proptest::bool::ANY,     // secondary index?
        ),
        1..4,
    )
    .prop_map(|tables| {
        let mut b = SchemaBuilder::new("prop");
        for (i, (rows, bytes, secondary)) in tables.into_iter().enumerate() {
            b = b.table(&format!("t{i}"), rows, bytes).primary_index(8.0);
            if secondary {
                b = b.index(&format!("t{i}_sec"), 8.0);
            }
        }
        b.build()
    })
}

/// Random read-mostly workload over a schema.
fn workload_for(schema: &dot_dbms::Schema, sel: f64) -> Workload {
    let queries: Vec<QuerySpec> = schema
        .tables()
        .iter()
        .map(|t| {
            let pk = schema.primary_index_of(t.id).expect("pk").id;
            QuerySpec::read(
                &format!("q_{}", t.name),
                ReadOp::of(Rel::Scan(ScanSpec::indexed(t.id, sel, pk))),
            )
        })
        .collect();
    Workload::dss("prop", queries)
}

/// Random layouts over box2's three classes, seeded by a digit vector.
fn layouts_from_seed(object_count: usize, seed: &[usize]) -> Vec<Layout> {
    let pool = catalog::box2();
    let classes: Vec<ClassId> = pool.ids().collect();
    // A handful of distinct layouts: rotate the seed for each.
    (0..4)
        .map(|rot| {
            let assignment: Vec<ClassId> = (0..object_count)
                .map(|i| classes[seed[(i + rot) % seed.len()] % classes.len()])
                .collect();
            Layout::from_assignment(assignment)
        })
        .collect()
}

/// Deterministic splitmix64 step, so the churn test's access pattern is
/// scrambled (no cyclic scan the eviction policy could resonate with) yet
/// reproducible.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Regression: a warm cache at capacity must sustain a hit-rate floor under
/// key churn. The key set is slightly larger than the cache, and accesses
/// are scrambled-random, so a sane eviction policy (evict one victim per
/// admission) keeps nearly the whole cache resident and hits at about
/// `capacity / keys`. The old flush-the-world eviction cleared an entire
/// shard every time it filled, sawtoothing occupancy and halving the hit
/// rate — this test fails against it.
#[test]
fn warm_cache_at_capacity_sustains_hit_rate_under_churn() {
    // 6 objects over box2's 3 classes = 729 distinct layouts, so every
    // shard of the cache holds several times its per-shard capacity worth
    // of keys and eviction is continuously exercised.
    let schema = SchemaBuilder::new("churn")
        .table("t0", 2_000_000.0, 120.0)
        .primary_index(8.0)
        .table("t1", 1_000_000.0, 80.0)
        .primary_index(8.0)
        .table("t2", 500_000.0, 60.0)
        .primary_index(8.0)
        .build();
    let pool = catalog::box2();
    let w = workload_for(&schema, 0.01);
    let p = Problem::new(
        &schema,
        &pool,
        &w,
        SlaSpec::relative(0.5),
        EngineConfig::dss(),
    );
    let classes: Vec<ClassId> = pool.ids().collect();
    let n = schema.object_count();
    assert_eq!(n, 6);
    let layouts: Vec<Layout> = (0..classes.len().pow(n as u32))
        .map(|mut code| {
            let assignment: Vec<ClassId> = (0..n)
                .map(|_| {
                    let c = classes[code % classes.len()];
                    code /= classes.len();
                    c
                })
                .collect();
            Layout::from_assignment(assignment)
        })
        .collect();
    assert_eq!(layouts.len(), 729);

    // Capacity 512 (32 per shard) against ~46 keys per shard: well over
    // capacity everywhere, but close enough that a policy which keeps the
    // cache full hits on most accesses.
    let cache = CachedEstimator::with_capacity(512);
    let view = cache.scope(&p);
    for l in &layouts {
        view.estimate(&p, l);
    }
    let warm = cache.stats();

    let mut state = 0xC0FFEE_u64;
    let churn = 2_000usize;
    for _ in 0..churn {
        let l = &layouts[(splitmix(&mut state) % layouts.len() as u64) as usize];
        view.estimate(&p, l);
    }
    let stats = cache.stats();
    let hits = stats.hits - warm.hits;
    let misses = stats.misses - warm.misses;
    assert_eq!(hits + misses, churn as u64);
    let rate = hits as f64 / churn as f64;
    assert!(
        rate >= 0.58,
        "churn hit rate {rate:.3} is below the 0.58 floor \
         (single-victim eviction keeps shards full and hits at roughly \
         capacity/keys ≈ 0.70; flush-the-world eviction sawtooths shard \
         occupancy and collapses to ≈ 0.43)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Miss, hit, and post-eviction paths all return the exact value the
    /// cache-blind `estimate_toc` computes — even with a capacity so small
    /// that shards flush constantly.
    #[test]
    fn cached_estimates_match_uncached_incl_eviction(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        seed in proptest::collection::vec(0usize..3, 1..16),
        capacity in 1usize..64,
    ) {
        let pool = catalog::box2();
        let w = workload_for(&schema, sel);
        let p = Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
        let layouts = layouts_from_seed(schema.object_count(), &seed);
        let reference: Vec<_> = layouts.iter().map(|l| toc::estimate_toc(&p, l)).collect();

        let cache = CachedEstimator::with_capacity(capacity);
        let view = cache.scope(&p);
        for round in 0..3 {
            for (l, expect) in layouts.iter().zip(&reference) {
                let got = view.estimate(&p, l);
                prop_assert_eq!(&got, expect, "round {} diverged", round);
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, 3 * layouts.len() as u64);
    }

    /// Concurrent workers sharing one cache all read bit-identical values,
    /// racing misses included.
    #[test]
    fn shared_cache_is_consistent_across_threads(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        seed in proptest::collection::vec(0usize..3, 1..16),
    ) {
        let pool = catalog::box2();
        let w = workload_for(&schema, sel);
        let p = Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
        let layouts = layouts_from_seed(schema.object_count(), &seed);
        let reference: Vec<_> = layouts.iter().map(|l| toc::estimate_toc(&p, l)).collect();

        let cache = CachedEstimator::new();
        let view = cache.scope(&p);
        let from_threads: Vec<Vec<toc::TocEstimate>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| layouts.iter().map(|l| view.estimate(&p, l)).collect())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cache worker"))
                .collect()
        });
        for worker in from_threads {
            for (got, expect) in worker.iter().zip(&reference) {
                prop_assert_eq!(got, expect);
            }
        }
    }

    /// Distinct problems sharing one cache never cross-contaminate: the
    /// cost model changes the estimate, so each problem must read back its
    /// own values.
    #[test]
    fn problems_do_not_cross_contaminate(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        seed in proptest::collection::vec(0usize..3, 1..16),
        alpha in 0.1..1.0f64,
    ) {
        let pool = catalog::box2();
        let w = workload_for(&schema, sel);
        let linear =
            Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
        let discrete = linear
            .clone()
            .with_cost_model(LayoutCostModel::Discrete { alpha });
        let layouts = layouts_from_seed(schema.object_count(), &seed);

        let cache = CachedEstimator::new();
        let linear_view = cache.scope(&linear);
        let discrete_view = cache.scope(&discrete);
        for l in &layouts {
            // Interleave so a confused key would surface immediately.
            prop_assert_eq!(linear_view.estimate(&linear, l), toc::estimate_toc(&linear, l));
            prop_assert_eq!(
                discrete_view.estimate(&discrete, l),
                toc::estimate_toc(&discrete, l)
            );
        }
    }
}
