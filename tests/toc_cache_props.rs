//! Property suite for `toc::CachedEstimator`: for random problems and
//! layouts, cached estimates are **bit-identical** to the uncached
//! `estimate_toc` — on the miss path, the hit path, after eviction has
//! flushed entries, across concurrent threads sharing one cache, and when
//! several distinct problems share one cache.

use dot_core::problem::{LayoutCostModel, Problem};
use dot_core::toc::{self, CachedEstimator};
use dot_dbms::query::{QuerySpec, ReadOp, Rel, ScanSpec};
use dot_dbms::{EngineConfig, Layout, SchemaBuilder};
use dot_storage::{catalog, ClassId};
use dot_workloads::{SlaSpec, Workload};
use proptest::prelude::*;

/// Random schema: 1–4 tables, each with a primary index and 0–1 secondary.
fn arb_schema() -> impl Strategy<Value = dot_dbms::Schema> {
    proptest::collection::vec(
        (
            1_000.0..5_000_000.0f64, // rows
            40.0..400.0f64,          // row bytes
            proptest::bool::ANY,     // secondary index?
        ),
        1..4,
    )
    .prop_map(|tables| {
        let mut b = SchemaBuilder::new("prop");
        for (i, (rows, bytes, secondary)) in tables.into_iter().enumerate() {
            b = b.table(&format!("t{i}"), rows, bytes).primary_index(8.0);
            if secondary {
                b = b.index(&format!("t{i}_sec"), 8.0);
            }
        }
        b.build()
    })
}

/// Random read-mostly workload over a schema.
fn workload_for(schema: &dot_dbms::Schema, sel: f64) -> Workload {
    let queries: Vec<QuerySpec> = schema
        .tables()
        .iter()
        .map(|t| {
            let pk = schema.primary_index_of(t.id).expect("pk").id;
            QuerySpec::read(
                &format!("q_{}", t.name),
                ReadOp::of(Rel::Scan(ScanSpec::indexed(t.id, sel, pk))),
            )
        })
        .collect();
    Workload::dss("prop", queries)
}

/// Random layouts over box2's three classes, seeded by a digit vector.
fn layouts_from_seed(object_count: usize, seed: &[usize]) -> Vec<Layout> {
    let pool = catalog::box2();
    let classes: Vec<ClassId> = pool.ids().collect();
    // A handful of distinct layouts: rotate the seed for each.
    (0..4)
        .map(|rot| {
            let assignment: Vec<ClassId> = (0..object_count)
                .map(|i| classes[seed[(i + rot) % seed.len()] % classes.len()])
                .collect();
            Layout::from_assignment(assignment)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Miss, hit, and post-eviction paths all return the exact value the
    /// cache-blind `estimate_toc` computes — even with a capacity so small
    /// that shards flush constantly.
    #[test]
    fn cached_estimates_match_uncached_incl_eviction(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        seed in proptest::collection::vec(0usize..3, 1..16),
        capacity in 1usize..64,
    ) {
        let pool = catalog::box2();
        let w = workload_for(&schema, sel);
        let p = Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
        let layouts = layouts_from_seed(schema.object_count(), &seed);
        let reference: Vec<_> = layouts.iter().map(|l| toc::estimate_toc(&p, l)).collect();

        let cache = CachedEstimator::with_capacity(capacity);
        let view = cache.scope(&p);
        for round in 0..3 {
            for (l, expect) in layouts.iter().zip(&reference) {
                let got = view.estimate(&p, l);
                prop_assert_eq!(&got, expect, "round {} diverged", round);
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, 3 * layouts.len() as u64);
    }

    /// Concurrent workers sharing one cache all read bit-identical values,
    /// racing misses included.
    #[test]
    fn shared_cache_is_consistent_across_threads(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        seed in proptest::collection::vec(0usize..3, 1..16),
    ) {
        let pool = catalog::box2();
        let w = workload_for(&schema, sel);
        let p = Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
        let layouts = layouts_from_seed(schema.object_count(), &seed);
        let reference: Vec<_> = layouts.iter().map(|l| toc::estimate_toc(&p, l)).collect();

        let cache = CachedEstimator::new();
        let view = cache.scope(&p);
        let from_threads: Vec<Vec<toc::TocEstimate>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| layouts.iter().map(|l| view.estimate(&p, l)).collect())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cache worker"))
                .collect()
        });
        for worker in from_threads {
            for (got, expect) in worker.iter().zip(&reference) {
                prop_assert_eq!(got, expect);
            }
        }
    }

    /// Distinct problems sharing one cache never cross-contaminate: the
    /// cost model changes the estimate, so each problem must read back its
    /// own values.
    #[test]
    fn problems_do_not_cross_contaminate(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        seed in proptest::collection::vec(0usize..3, 1..16),
        alpha in 0.1..1.0f64,
    ) {
        let pool = catalog::box2();
        let w = workload_for(&schema, sel);
        let linear =
            Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
        let discrete = linear
            .clone()
            .with_cost_model(LayoutCostModel::Discrete { alpha });
        let layouts = layouts_from_seed(schema.object_count(), &seed);

        let cache = CachedEstimator::new();
        let linear_view = cache.scope(&linear);
        let discrete_view = cache.scope(&discrete);
        for l in &layouts {
            // Interleave so a confused key would surface immediately.
            prop_assert_eq!(linear_view.estimate(&linear, l), toc::estimate_toc(&linear, l));
            prop_assert_eq!(
                discrete_view.estimate(&discrete, l),
                toc::estimate_toc(&discrete, l)
            );
        }
    }
}
