//! Integration tests provisioning the non-paper workloads (YCSB) and
//! exercising the sweep, generalized-provisioning and discrete-cost APIs
//! end to end.

use dot_core::generalized::choose_configuration;
use dot_core::problem::{LayoutCostModel, Problem};
use dot_core::{constraints, dot, sweep};
use dot_dbms::EngineConfig;
use dot_profiler::{profile_workload, ProfileSource};
use dot_storage::catalog;
use dot_workloads::ycsb::{self, YcsbMix};
use dot_workloads::{tpch, SlaSpec};

#[test]
fn ycsb_c_read_only_moves_off_premium_at_loose_sla() {
    // A read-only point workload: at a loose SLA the L-SSD classes (fast
    // random reads, 18x cheaper than the H-SSD) should win the table.
    let schema = ycsb::schema(5_000_000.0);
    let workload = ycsb::workload(&schema, YcsbMix::C, 300);
    let pool = catalog::box2();
    let cfg = EngineConfig::oltp();
    let problem = Problem::new(&schema, &pool, &workload, SlaSpec::relative(0.05), cfg);
    let cons = constraints::derive(&problem);
    let profile = profile_workload(&workload, &schema, &pool, &cfg, ProfileSource::Estimate);
    let outcome = dot::optimize(&problem, &profile, &cons);
    let layout = outcome.layout.expect("feasible");
    let table = schema.table_by_name("usertable").unwrap();
    assert_ne!(
        layout.class_of(table.object),
        pool.most_expensive(),
        "read-only usertable should leave the H-SSD at a loose SLA"
    );
}

#[test]
fn ycsb_a_update_heavy_is_stickier_than_c() {
    // Workload A's random writes are pathological off the H-SSD (Table 1:
    // L-SSD RW is 62 ms/row), so A needs a looser SLA than C to move.
    let schema = ycsb::schema(5_000_000.0);
    let pool = catalog::box2();
    let cfg = EngineConfig::oltp();
    let cost_at = |mix: YcsbMix, ratio: f64| {
        let workload = ycsb::workload(&schema, mix, 300);
        let problem = Problem::new(&schema, &pool, &workload, SlaSpec::relative(ratio), cfg);
        let cons = constraints::derive(&problem);
        let profile = profile_workload(&workload, &schema, &pool, &cfg, ProfileSource::Estimate);
        dot::optimize(&problem, &profile, &cons)
            .estimate
            .map(|e| e.layout_cost_cents_per_hour)
    };
    let a = cost_at(YcsbMix::A, 0.25).expect("A feasible");
    let c = cost_at(YcsbMix::C, 0.25).expect("C feasible");
    assert!(
        c <= a,
        "read-only C ({c:.4}) should provision at most as expensively as update-heavy A ({a:.4})"
    );
}

#[test]
fn sla_sweep_traces_the_cost_performance_dial() {
    let schema = tpch::subset_schema(2.0);
    let workload = tpch::subset_workload(&schema);
    let pool = catalog::box1();
    let points = sweep::sla_sweep(
        &schema,
        &pool,
        &workload,
        EngineConfig::dss(),
        &[1.0, 0.5, 0.2],
        ProfileSource::Estimate,
    )
    .expect("request is well-formed");
    // Ratio 1.0 permits no degradation: only zero-traffic objects (unused
    // indexes) may leave the premium class.
    assert!(points[0].objects_moved < points[2].objects_moved);
    // Ratio 0.2 moves the bulk.
    assert!(points[2].objects_moved >= schema.object_count() / 2);
    // The dial is monotone.
    assert!(points[1].objects_moved >= points[0].objects_moved);
    assert!(points[2].objects_moved >= points[1].objects_moved);
}

#[test]
fn generalized_provisioning_is_consistent_with_per_box_runs() {
    let schema = tpch::subset_schema(2.0);
    let workload = tpch::subset_workload(&schema);
    let candidates = vec![catalog::box1(), catalog::box2()];
    let choice = choose_configuration(
        &schema,
        &workload,
        SlaSpec::relative(0.5),
        EngineConfig::dss(),
        &candidates,
        ProfileSource::Estimate,
        LayoutCostModel::Linear,
    );
    let winner = choice.winning().expect("feasible");
    // Re-running DOT on the winning pool alone reproduces the same TOC.
    let pool = &candidates[winner.index];
    let problem = Problem::new(
        &schema,
        pool,
        &workload,
        SlaSpec::relative(0.5),
        EngineConfig::dss(),
    );
    let cons = constraints::derive(&problem);
    let profile = profile_workload(
        &workload,
        &schema,
        pool,
        &problem.cfg,
        ProfileSource::Estimate,
    );
    let direct = dot::optimize(&problem, &profile, &cons);
    let a = winner
        .recommendation
        .as_ref()
        .unwrap()
        .estimate
        .objective_cents;
    let b = direct.estimate.unwrap().objective_cents;
    assert!((a - b).abs() < 1e-9);
}

#[test]
fn discrete_cost_model_consolidates_classes() {
    let schema = tpch::subset_schema(2.0);
    let workload = tpch::subset_workload(&schema);
    let pool = catalog::box2();
    let cfg = EngineConfig::dss();
    let profile = profile_workload(&workload, &schema, &pool, &cfg, ProfileSource::Estimate);
    let classes_used = |alpha: f64| -> usize {
        let problem = Problem::new(&schema, &pool, &workload, SlaSpec::relative(0.25), cfg)
            .with_cost_model(LayoutCostModel::Discrete { alpha });
        let cons = constraints::derive(&problem);
        let outcome = dot::optimize(&problem, &profile, &cons);
        outcome
            .layout
            .map(|l| {
                l.space_per_class(&schema, &pool)
                    .iter()
                    .filter(|&&s| s > 0.0)
                    .count()
            })
            .unwrap_or(0)
    };
    let spread = classes_used(0.0);
    let consolidated = classes_used(1.0);
    assert!(
        consolidated <= spread,
        "alpha=1 uses {consolidated} classes vs {spread} at alpha=0"
    );
}
