//! Property suite for incremental TOC re-estimation
//! (`toc::ProblemDelta` / `TocEstimate::apply_delta`): for random problems,
//! random reweighting drifts, and random layouts, the delta-applied
//! estimate is **bit-identical** to a full `estimate_toc` of the observed
//! problem — and shifts outside the validity envelope (phase changes,
//! engine-config changes, different schema instances) refuse to form a
//! delta at all, forcing the documented fallback to full recomputation.

use dot_core::problem::Problem;
use dot_core::toc::{self, ProblemDelta};
use dot_dbms::query::{Op, QuerySpec, ReadOp, Rel, ScanSpec, UpdateOp};
use dot_dbms::{EngineConfig, Layout, SchemaBuilder};
use dot_storage::{catalog, ClassId};
use dot_workloads::{drift, SlaSpec, Workload};
use proptest::prelude::*;

/// Random schema: 1–4 tables, each with a primary index and 0–1 secondary.
fn arb_schema() -> impl Strategy<Value = dot_dbms::Schema> {
    proptest::collection::vec(
        (
            1_000.0..5_000_000.0f64, // rows
            40.0..400.0f64,          // row bytes
            proptest::bool::ANY,     // secondary index?
        ),
        1..4,
    )
    .prop_map(|tables| {
        let mut b = SchemaBuilder::new("prop");
        for (i, (rows, bytes, secondary)) in tables.into_iter().enumerate() {
            b = b.table(&format!("t{i}"), rows, bytes).primary_index(8.0);
            if secondary {
                b = b.index(&format!("t{i}_sec"), 8.0);
            }
        }
        b.build()
    })
}

/// A mixed read/write workload (one indexed read per table plus one
/// update), so `shift_read_write` moves weight in both directions.
fn mixed_workload(schema: &dot_dbms::Schema, sel: f64, weights: &[f64], oltp: bool) -> Workload {
    let mut queries: Vec<QuerySpec> = schema
        .tables()
        .iter()
        .map(|t| {
            let pk = schema.primary_index_of(t.id).expect("pk").id;
            QuerySpec::read(
                &format!("q_{}", t.name),
                ReadOp::of(Rel::Scan(ScanSpec::indexed(t.id, sel, pk))),
            )
        })
        .collect();
    let t0 = &schema.tables()[0];
    let pk0 = schema.primary_index_of(t0.id).expect("pk").id;
    queries.push(QuerySpec::transaction(
        "w_0",
        vec![Op::Update(UpdateOp {
            table: t0.id,
            rows: 50.0,
            via: Some(pk0),
            updates_indexed_key: false,
        })],
    ));
    for (q, w) in queries.iter_mut().zip(weights) {
        q.weight = *w;
    }
    if oltp {
        Workload::oltp("prop", queries, 8, 100.0)
    } else {
        Workload::dss("prop", queries)
    }
}

/// Random layouts over box2's three classes, seeded by a digit vector.
fn layouts_from_seed(object_count: usize, seed: &[usize]) -> Vec<Layout> {
    let pool = catalog::box2();
    let classes: Vec<ClassId> = pool.ids().collect();
    (0..4)
        .map(|rot| {
            let assignment: Vec<ClassId> = (0..object_count)
                .map(|i| classes[seed[(i + rot) % seed.len()] % classes.len()])
                .collect();
            Layout::from_assignment(assignment)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// DSS: a read/write shift chained with a demand scaling is inside the
    /// validity envelope, and applying the delta to an anchor estimate is
    /// bit-identical to fully re-estimating the drifted problem.
    #[test]
    fn dss_reweighting_delta_is_bit_identical(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        weights in proptest::collection::vec(0.1..10.0f64, 5),
        seed in proptest::collection::vec(0usize..3, 1..16),
        shift in -0.8..0.8f64,
        factor in 0.2..3.0f64,
    ) {
        let pool = catalog::box2();
        let w = mixed_workload(&schema, sel, &weights, false);
        let anchor = Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
        let drifted = drift::scale_throughput(&drift::shift_read_write(&w, shift), factor);
        let observed =
            Problem::new(&schema, &pool, &drifted, SlaSpec::relative(0.5), EngineConfig::dss());
        let delta = ProblemDelta::between(&anchor, &observed);
        prop_assert!(delta.is_some(), "reweighting drift must be representable");
        let delta = delta.unwrap();
        for layout in layouts_from_seed(schema.object_count(), &seed) {
            let base = toc::estimate_toc(&anchor, &layout);
            let full = toc::estimate_toc(&observed, &layout);
            prop_assert_eq!(base.apply_delta(&delta), full);
        }
    }

    /// OLTP: demand scaling moves the degree of concurrency instead of the
    /// weights; the delta path must still match full recomputation bitwise.
    #[test]
    fn oltp_reweighting_delta_is_bit_identical(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        weights in proptest::collection::vec(0.1..10.0f64, 5),
        seed in proptest::collection::vec(0usize..3, 1..16),
        shift in -0.8..0.8f64,
        factor in 0.2..3.0f64,
    ) {
        let pool = catalog::box2();
        let w = mixed_workload(&schema, sel, &weights, true);
        let anchor = Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::oltp());
        let drifted = drift::scale_throughput(&drift::shift_read_write(&w, shift), factor);
        let observed =
            Problem::new(&schema, &pool, &drifted, SlaSpec::relative(0.5), EngineConfig::oltp());
        let delta = ProblemDelta::between(&anchor, &observed);
        prop_assert!(delta.is_some(), "reweighting drift must be representable");
        let delta = delta.unwrap();
        for layout in layouts_from_seed(schema.object_count(), &seed) {
            let base = toc::estimate_toc(&anchor, &layout);
            let full = toc::estimate_toc(&observed, &layout);
            prop_assert_eq!(base.apply_delta(&delta), full);
        }
    }

    /// Outside the envelope — different query shapes, engine config, or
    /// schema instance — no delta forms and the caller must recompute.
    #[test]
    fn out_of_envelope_shifts_refuse_a_delta(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        weights in proptest::collection::vec(0.1..10.0f64, 5),
    ) {
        let pool = catalog::box2();
        let w = mixed_workload(&schema, sel, &weights, false);
        let anchor = Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());

        // Phase change: a different query set entirely.
        let phase = drift::analytical_phase(&schema);
        let observed =
            Problem::new(&schema, &pool, &phase, SlaSpec::relative(0.5), EngineConfig::dss());
        prop_assert!(ProblemDelta::between(&anchor, &observed).is_none());

        // Same workload, different engine configuration.
        let other_cfg =
            Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::oltp());
        prop_assert!(ProblemDelta::between(&anchor, &other_cfg).is_none());

        // Same workload, distinct (if equal) schema instance: conservative
        // refusal — identity, not deep equality, guards the planner inputs.
        let schema2 = schema.clone();
        let other_schema =
            Problem::new(&schema2, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
        prop_assert!(ProblemDelta::between(&anchor, &other_schema).is_none());
    }
}
