//! Replay every committed hostile-trace regression under
//! `tests/golden/adversarial/`: each file carries one shrunk
//! [`adversarial::HostileCase`] plus the pinned [`adversarial::Verdict`]
//! its replay must reproduce — triggers at the same ticks, the same
//! defer counts, the same migrations. The anti-flap contract
//! (`adversarial::check_invariants`) is re-checked on every replay, so a
//! controller change that breaks an invariant *or* silently changes a
//! pinned trajectory fails here before the fuzzer ever runs.
//!
//! To re-pin verdicts after an intentional behaviour change:
//! `UPDATE_GOLDEN=1 cargo test --test adversarial_regressions`.

mod adversarial;

use adversarial::{check_invariants, run_case, verdict_of, RegressionCase};

fn regression_files() -> Vec<std::path::PathBuf> {
    let dir = adversarial::regression_dir();
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.expect("read dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn committed_hostile_traces_replay_to_their_pinned_verdicts() {
    let files = regression_files();
    assert!(
        !files.is_empty(),
        "no committed regression cases under tests/golden/adversarial/"
    );
    for path in files {
        let text = std::fs::read_to_string(&path).expect("read regression case");
        let record: RegressionCase =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let events = run_case(&record.case)
            .unwrap_or_else(|e| panic!("{}: replay failed: {e:?}", path.display()));
        if let Err(violation) = check_invariants(&events, &record.case.config) {
            panic!(
                "{}: contract violation on replay: {violation}",
                path.display()
            );
        }
        let verdict = verdict_of(&events);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            let updated = RegressionCase {
                case: record.case,
                verdict,
            };
            let json = serde_json::to_string_pretty(&updated).expect("case serializes");
            std::fs::write(&path, json + "\n").expect("write regression case");
            continue;
        }
        assert_eq!(
            verdict,
            record.verdict,
            "{}: the controller's behaviour on this hostile trace drifted from \
             the pinned verdict; if intentional, regenerate with UPDATE_GOLDEN=1 \
             cargo test --test adversarial_regressions",
            path.display()
        );
    }
}
