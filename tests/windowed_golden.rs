//! Golden maintenance-window trajectory: a byte budget cuts a drift-
//! triggered migration short, and the controller's recurring maintenance
//! window (`window_ticks`) finishes the rollout two windows later — the
//! committed `ControlEvent` log pins the whole arc under
//! `tests/golden/windowed_rollout.json`.
//!
//! The trajectory (TPC-C baseline, two-class box, analytical flip held
//! for seven ticks, cool-down 2, window every 3 ticks):
//!
//! * tick 0 — drift triggers; the budget admits all but the smallest
//!   group: `Partial`, a rollout is pending;
//! * ticks 1-2 — the observation re-baselined, so the held phase is
//!   quiet, and the window has not opened yet;
//! * tick 3 — the window opens with the rollout pending and migrates the
//!   deferred remainder (`Migrate`), clearing the pending flag;
//! * ticks 4-6 — quiet: tick 6's window finds nothing pending and does
//!   not trigger.
//!
//! Comparison is **structural** (parse, then `assert_eq!`). The log must
//! be bit-identical under cache off / cold / warm before the golden
//! comparison runs.
//!
//! To regenerate after an intentional behaviour change:
//! `UPDATE_GOLDEN=1 cargo test --test windowed_golden`.

use dot_core::advisor::Advisor;
use dot_core::controller::{ControlEvent, Controller, ControllerConfig, TriggerReason};
use dot_core::replan::{MigrationBudget, MigrationDecision};
use dot_core::toc::CachedEstimator;
use dot_storage::catalog;
use dot_workloads::{drift, tpcc};
use std::path::PathBuf;
use std::sync::Arc;

const TICKS: usize = 7;

fn config(budget: MigrationBudget) -> ControllerConfig {
    ControllerConfig {
        cooldown_ticks: 2,
        window_ticks: Some(3),
        budget,
        ..ControllerConfig::default()
    }
}

fn replay(cache: Option<&Arc<CachedEstimator>>) -> Vec<ControlEvent> {
    let schema = tpcc::schema(2.0);
    let pool = catalog::box2();
    let baseline = tpcc::workload(&schema);
    let deployed = Advisor::builder(&schema, &pool, &baseline)
        .sla(0.5)
        .build()
        .expect("baseline session")
        .recommend("dot")
        .expect("baseline layout")
        .layout;
    let flipped = drift::analytical_phase(&schema);

    // A budget that admits all but the smallest group of the full flip
    // plan, so the first trigger must defer something.
    let full = Advisor::builder(&schema, &pool, &flipped)
        .sla(0.5)
        .build()
        .expect("flipped session")
        .replan_with(&deployed, "dot", &MigrationBudget::unbounded())
        .expect("full plan");
    assert!(full.plan.steps.len() >= 2, "the flip must move two groups");
    let smallest = full
        .plan
        .steps
        .iter()
        .map(|s| s.bytes)
        .fold(f64::INFINITY, f64::min);
    let budget = MigrationBudget {
        max_bytes: Some(full.plan.total_bytes - smallest),
        ..MigrationBudget::unbounded()
    };

    let mut controller = Controller::new(&schema, &pool, &baseline, deployed, 0.5, config(budget))
        .expect("controller opens");
    if let Some(cache) = cache {
        controller = controller.with_toc_cache(Arc::clone(cache));
    }
    for _ in 0..TICKS {
        controller.observe(&flipped).expect("tick observes");
    }
    controller.events().to_vec()
}

fn run_modes() -> Vec<ControlEvent> {
    let off = replay(None);
    let cold = replay(Some(&Arc::new(CachedEstimator::new())));
    let warm = {
        let cache = Arc::new(CachedEstimator::new());
        let _ = replay(Some(&cache));
        assert!(cache.stats().entries > 0, "warm-up must fill the cache");
        replay(Some(&cache))
    };
    assert_eq!(off, cold, "cache-off and cache-cold logs differ");
    assert_eq!(off, warm, "cache-off and cache-warm logs differ");
    off
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/windowed_rollout.json")
}

#[test]
fn the_windowed_rollout_matches_the_golden_log() {
    let log = run_modes();

    // The log must actually witness the arc: a budget-cut Partial on the
    // drift trigger, then exactly one Window trigger finishing it.
    let decisions: Vec<&MigrationDecision> = log
        .iter()
        .filter_map(|e| match e {
            ControlEvent::Planned { decision, .. } => Some(decision),
            _ => None,
        })
        .collect();
    assert!(
        matches!(
            decisions.first(),
            Some(MigrationDecision::Partial { deferred_groups }) if *deferred_groups >= 1
        ),
        "the first plan must be budget-cut: {decisions:?}"
    );
    assert!(
        matches!(decisions.last(), Some(MigrationDecision::Migrate)),
        "the window must finish the rollout: {decisions:?}"
    );
    let window_ticks: Vec<u64> = log
        .iter()
        .filter_map(|e| match e {
            ControlEvent::Triggered {
                tick,
                reason: TriggerReason::Window { .. },
                ..
            } => Some(*tick),
            _ => None,
        })
        .collect();
    assert_eq!(
        window_ticks,
        vec![3],
        "exactly one maintenance window may fire, at tick 3"
    );

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let json = serde_json::to_string_pretty(&log).expect("log serializes");
        std::fs::write(&path, json + "\n").expect("write golden file");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "no golden log at {} ({e}); run UPDATE_GOLDEN=1 \
             cargo test --test windowed_golden to create it",
            path.display()
        )
    });
    let expected: Vec<ControlEvent> =
        serde_json::from_str(&committed).expect("golden log parses structurally");
    assert_eq!(
        log, expected,
        "the windowed-rollout log drifted from the committed golden; if \
         the change is intentional, regenerate with UPDATE_GOLDEN=1 \
         cargo test --test windowed_golden"
    );
}
