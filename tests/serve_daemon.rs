//! End-to-end daemon conformance: the `dot-serve` protocol hosts many
//! concurrent tenants whose streamed [`ControlEvent`]s are **bit
//! identical** to the offline scenario simulator's trajectories — the
//! daemon adds transport and concurrency, never a second control path.
//!
//! Also pinned here: per-tenant typed errors never disturb other tenants
//! or the daemon, and graceful shutdown drains in-flight ticks and
//! flushes every tenant's provenance.

mod scenario;

use dot_core::controller::ControlEvent;
use dot_serve::framing::write_frame;
use dot_serve::protocol::{
    ProblemSpec, ProtocolError, Request, RequestFrame, Response, ResponseFrame, TenantId,
    PROTOCOL_VERSION,
};
use dot_serve::{Server, ServerConfig};
use scenario::CacheMode;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
            next_id: 1,
        }
    }

    fn request(&mut self, request: Request) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &RequestFrame { id, request }).expect("send");
        id
    }

    fn recv(&mut self) -> ResponseFrame {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(!line.is_empty(), "server closed the connection");
        serde_json::from_str(line.trim()).expect("parse response")
    }

    fn attach(&mut self, name: &str) -> TenantId {
        let id = self.request(Request::AttachTenant {
            name: Some(name.to_owned()),
            problem: problem_spec(),
            deployed: None,
            controller: Some(scenario::config()),
        });
        let frame = self.recv();
        assert_eq!(frame.id, id);
        match frame.response {
            Response::Attached {
                tenant,
                name: echoed,
            } => {
                assert_eq!(echoed, name);
                tenant
            }
            other => panic!("attach: {other:?}"),
        }
    }

    /// Observe one step, collecting the streamed events through the
    /// terminal `ObserveDone` (panics on an error frame).
    fn observe(
        &mut self,
        tenant: TenantId,
        step: &dot_core::controller::TraceStep,
    ) -> (Vec<ControlEvent>, u64) {
        let id = self.request(Request::Observe {
            tenant,
            step: step.clone(),
        });
        let mut events = Vec::new();
        loop {
            let frame = self.recv();
            assert_eq!(frame.id, id, "frames correlate to the observe request");
            match frame.response {
                Response::Event {
                    tenant: from,
                    event,
                } => {
                    assert_eq!(from, tenant, "events are scoped to the tenant");
                    events.push(event);
                }
                Response::ObserveDone {
                    tenant: from,
                    ticks,
                    ..
                } => {
                    assert_eq!(from, tenant);
                    return (events, ticks);
                }
                other => panic!("observe: {other:?}"),
            }
        }
    }
}

/// The simulator's fixed problem, spelled as the wire-protocol spec: the
/// `box2` pool, the 2-warehouse TPC-C preset, SLA 0.5 — exactly what
/// `scenario::run` builds in process.
fn problem_spec() -> ProblemSpec {
    serde_json::from_str("{\"pool\": \"box2\", \"database\": \"tpcc:2\", \"sla\": 0.5}")
        .expect("problem spec")
}

#[test]
fn concurrent_tenants_stream_bit_identical_trajectories_and_shutdown_flushes() {
    let scenarios = scenario::scenarios();
    // The offline truth, one log per trajectory, cache off.
    let expected: Vec<Vec<ControlEvent>> = scenarios
        .iter()
        .map(|s| scenario::run(&s.steps, CacheMode::Off))
        .collect();
    let expected = Arc::new(expected);
    let scenarios = Arc::new(scenarios);

    let server = Server::bind(ServerConfig {
        listen: Some("127.0.0.1:0".to_owned()),
        workers: 8,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let run = thread::spawn(move || server.run().expect("run"));

    // 8 tenants (each trajectory twice), one connection per tenant, all
    // replaying concurrently against the shared daemon and its one cache.
    let mut workers = Vec::new();
    for tenant_idx in 0..8usize {
        let scenarios = Arc::clone(&scenarios);
        let expected = Arc::clone(&expected);
        workers.push(thread::spawn(move || {
            let scn = &scenarios[tenant_idx % scenarios.len()];
            let golden = &expected[tenant_idx % scenarios.len()];
            let mut client = Client::connect(addr);
            let tenant = client.attach(&format!("tenant-{}-{}", scn.name, tenant_idx));
            let mut events = Vec::new();
            let mut ticks = 0;
            for step in &scn.steps {
                let (step_events, total_ticks) = client.observe(tenant, step);
                events.extend(step_events);
                ticks = total_ticks;
            }
            assert_eq!(
                &events, golden,
                "tenant {tenant} ({}) must stream the offline trajectory bit-identically",
                scn.name
            );
            let expected_ticks: usize = scn.steps.iter().map(|s| s.repeat.unwrap_or(1)).sum();
            assert_eq!(ticks as usize, expected_ticks);
            (tenant, ticks)
        }));
    }
    let replayed: Vec<(TenantId, u64)> = workers
        .into_iter()
        .map(|w| w.join().expect("tenant thread"))
        .collect();

    // One control connection: fleet stats, one explicit detach, then the
    // graceful shutdown flushing everything still attached.
    let mut control = Client::connect(addr);
    let id = control.request(Request::Stats);
    let frame = control.recv();
    assert_eq!(frame.id, id);
    let total_ticks: u64 = replayed.iter().map(|(_, t)| t).sum();
    match frame.response {
        Response::Stats {
            tenants,
            ticks,
            cache,
            ..
        } => {
            assert_eq!(tenants, 8);
            assert_eq!(ticks, total_ticks);
            // 8 identically-shaped tenants over one shared estimator:
            // most estimates must come from the cache.
            assert!(
                cache.hits > cache.misses,
                "shared cache must carry cross-tenant reuse: {cache:?}"
            );
        }
        other => panic!("stats: {other:?}"),
    }

    let (first_tenant, first_ticks) = replayed[0];
    control.request(Request::DetachTenant {
        tenant: first_tenant,
    });
    match control.recv().response {
        Response::Detached { summary } => {
            assert_eq!(summary.tenant, first_tenant);
            assert_eq!(summary.ticks, first_ticks);
        }
        other => panic!("detach: {other:?}"),
    }

    control.request(Request::Shutdown);
    match control.recv().response {
        Response::ShuttingDown { tenants } => {
            assert_eq!(tenants.len(), 7, "the detached tenant is not re-flushed");
            for summary in &tenants {
                let (_, ticks) = replayed
                    .iter()
                    .find(|(t, _)| *t == summary.tenant)
                    .expect("flushed summary matches an attached tenant");
                assert_eq!(summary.ticks, *ticks, "{}", summary.name);
                // Every summary carries provenance: a wall clock and the
                // last trigger reason (Quiescent for the noise tenants).
                assert!(!summary.name.is_empty());
            }
        }
        other => panic!("shutdown: {other:?}"),
    }
    run.join().expect("daemon unwinds cleanly");
}

#[test]
fn one_tenants_typed_error_never_disturbs_another() {
    let server = Server::bind(ServerConfig {
        listen: Some("127.0.0.1:0".to_owned()),
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let run = thread::spawn(move || server.run().expect("run"));

    let mut healthy = Client::connect(addr);
    let mut faulty = Client::connect(addr);
    let healthy_tenant = healthy.attach("healthy");
    let faulty_tenant = faulty.attach("faulty");

    // An out-of-domain step is a typed, request-scoped reject...
    let bad_step: dot_core::controller::TraceStep =
        serde_json::from_str("{\"shift\": 5.0}").unwrap();
    let id = faulty.request(Request::Observe {
        tenant: faulty_tenant,
        step: bad_step,
    });
    let frame = faulty.recv();
    assert_eq!(frame.id, id);
    match frame.response {
        Response::Error {
            error: ProtocolError::Provision { error },
        } => assert_eq!(error.kind(), "invalid-request"),
        other => panic!("faulty observe: {other:?}"),
    }

    // ...that neither detaches the faulty tenant nor touches the healthy
    // one: both still observe successfully afterwards.
    let ok_step = serde_json::from_str("{\"shift\": 0.02}").unwrap();
    let (_, faulty_ticks) = faulty.observe(faulty_tenant, &ok_step);
    assert_eq!(faulty_ticks, 1, "the failed step never ticked");
    let (events, healthy_ticks) = healthy.observe(healthy_tenant, &ok_step);
    assert_eq!(healthy_ticks, 1);
    assert!(
        matches!(events.as_slice(), [ControlEvent::Observed { .. }]),
        "{events:?}"
    );

    // The daemon itself never wavered: hello still answers.
    let id = healthy.request(Request::Hello {
        version: PROTOCOL_VERSION,
    });
    let frame = healthy.recv();
    assert_eq!(frame.id, id);
    assert!(matches!(frame.response, Response::Hello { .. }));

    healthy.request(Request::Shutdown);
    match healthy.recv().response {
        Response::ShuttingDown { tenants } => assert_eq!(tenants.len(), 2),
        other => panic!("shutdown: {other:?}"),
    }
    run.join().expect("daemon unwinds cleanly");
}

/// The `dot-cli serve` passthrough boots the same daemon as the
/// standalone binary: spawn it on an ephemeral port, handshake over TCP,
/// and shut it down through the protocol.
#[test]
fn dot_cli_serve_passthrough_runs_the_daemon() {
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_dot-cli"))
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dot-cli serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("announcement");
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .parse()
        .expect("bound address");

    let mut client = Client::connect(addr);
    client.request(Request::Hello {
        version: PROTOCOL_VERSION,
    });
    assert!(matches!(client.recv().response, Response::Hello { .. }));
    client.request(Request::Shutdown);
    assert!(matches!(
        client.recv().response,
        Response::ShuttingDown { .. }
    ));
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "{status:?}");
}
