//! Property-based tests over the re-provisioning planner: for randomly
//! generated schemas, drifts, deployed layouts, and budgets,
//!
//! * **conservation** — the per-move TOC deltas of any plan sum exactly to
//!   the TOC-rate delta between the deployed and final layouts (the
//!   telescoping contract that makes plan arithmetic trustworthy);
//! * a **zero-budget** replan is always the identity plan;
//! * every set budget ceiling is honored;
//! * non-empty plans have strictly positive savings and a finite positive
//!   break-even horizon; empty plans report a zero horizon;
//! * every enumerated move carries a **finite** score under any drift,
//!   however degenerate the cost denominators get;
//! * a scheduled replan under any in-flight SLA ratio — valid, absurd, or
//!   absent — returns a typed answer, never a panic, and every `Ok`
//!   schedule keeps the wave-partition and makespan invariants.

use dot_core::advisor::Advisor;
use dot_core::moves::enumerate_moves;
use dot_core::replan::{
    toc_rate_cents_per_hour, MigrationBudget, MigrationDecision, ReplanOptions,
};
use dot_dbms::query::{QuerySpec, ReadOp, Rel, ScanSpec};
use dot_dbms::{Layout, SchemaBuilder};
use dot_storage::{catalog, ClassId};
use dot_workloads::{drift, synth, Workload};
use proptest::prelude::*;

/// Random schema of 1–3 tables (each with a primary index and an optional
/// secondary), so plans have several object groups to order.
fn arb_schema() -> impl Strategy<Value = dot_dbms::Schema> {
    proptest::collection::vec(
        (
            10_000.0..2_000_000.0f64, // rows
            40.0..300.0f64,           // row bytes
            proptest::bool::ANY,      // secondary index?
        ),
        1..4,
    )
    .prop_map(|tables| {
        let mut b = SchemaBuilder::new("drift-prop");
        for (i, (rows, bytes, secondary)) in tables.into_iter().enumerate() {
            b = b.table(&format!("t{i}"), rows, bytes).primary_index(8.0);
            if secondary {
                b = b.index(&format!("t{i}_sec"), 8.0);
            }
        }
        b.build()
    })
}

/// A mixed read/write workload over every table, so read/write shifts have
/// something to act on.
fn workload_for(schema: &dot_dbms::Schema) -> Workload {
    let mut queries: Vec<QuerySpec> = Vec::new();
    for t in schema.tables() {
        let pk = schema.primary_index_of(t.id).expect("pk").id;
        queries.push(QuerySpec::read(
            &format!("scan_{}", t.name),
            ReadOp::of(Rel::Scan(ScanSpec::full(t.id))),
        ));
        queries.push(QuerySpec::read(
            &format!("probe_{}", t.name),
            ReadOp::of(Rel::Scan(ScanSpec::indexed(t.id, 0.001, pk))),
        ));
    }
    // One write stream borrowed from the synth shapes: update-by-key.
    let first = schema.tables()[0].id;
    let pk = schema.primary_index_of(first).expect("pk").id;
    queries.push(QuerySpec::transaction(
        "upd",
        vec![dot_dbms::query::Op::Update(dot_dbms::query::UpdateOp {
            table: first,
            rows: 200.0,
            via: Some(pk),
            updates_indexed_key: false,
        })],
    ));
    Workload::dss("drift-prop", queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: Σ per-move TOC deltas == rate(final) − rate(current),
    /// for any schema, drift, deployed layout, and byte budget.
    #[test]
    fn toc_deltas_conserve(
        schema in arb_schema(),
        shift in -0.6..0.6f64,
        scale in 0.5..2.0f64,
        seed_assignment in proptest::collection::vec(0usize..3, 12),
        budget_fraction in 0.0..1.5f64,
    ) {
        let pool = catalog::box2();
        let base = workload_for(&schema);
        let drifted = drift::scale_throughput(&drift::shift_read_write(&base, shift), scale);
        let current = Layout::from_assignment(
            (0..schema.object_count())
                .map(|i| ClassId(seed_assignment[i % seed_assignment.len()]))
                .collect(),
        );
        let advisor = Advisor::builder(&schema, &pool, &drifted)
            .sla(0.25)
            .build()
            .expect("session");
        let unbounded = advisor.replan(&current).expect("replan");
        let cap = unbounded.plan.total_bytes * budget_fraction;
        let budget = MigrationBudget::unbounded().with_max_bytes(cap);
        let rec = advisor.replan_with(&current, "dot", &budget).expect("budgeted replan");

        // Conservation, telescoping over the plan's own steps.
        let sum: f64 = rec.plan.steps.iter().map(|s| s.toc_delta_cents_per_hour).sum();
        let end_to_end =
            toc_rate_cents_per_hour(&advisor.context().estimate(&rec.plan.final_layout))
                - toc_rate_cents_per_hour(&rec.current_estimate);
        prop_assert!(
            (sum - end_to_end).abs() <= 1e-9 * end_to_end.abs().max(1.0),
            "Σ deltas {} != end-to-end {}", sum, end_to_end
        );

        // The byte ceiling is honored.
        prop_assert!(rec.plan.total_bytes <= cap + 1e-6, "{} > {}", rec.plan.total_bytes, cap);

        // Break-even contract.
        if rec.plan.steps.is_empty() {
            prop_assert_eq!(rec.plan.break_even_hours, 0.0);
            prop_assert_eq!(rec.plan.final_layout.assignment(), current.assignment());
        } else {
            prop_assert!(rec.plan.savings_cents_per_hour > 0.0);
            prop_assert!(
                rec.plan.break_even_hours > 0.0 && rec.plan.break_even_hours.is_finite(),
                "break-even {}", rec.plan.break_even_hours
            );
        }
    }

    /// A zero-budget replan is always the identity plan, whatever the
    /// deployed layout or drift.
    #[test]
    fn zero_budget_is_identity(
        schema in arb_schema(),
        shift in -0.6..0.6f64,
        current_seed in proptest::collection::vec(0usize..3, 12),
    ) {
        let pool = catalog::box2();
        let drifted = drift::shift_read_write(&workload_for(&schema), shift);
        let current = Layout::from_assignment(
            (0..schema.object_count())
                .map(|i| ClassId(current_seed[i % current_seed.len()]))
                .collect(),
        );
        let advisor = Advisor::builder(&schema, &pool, &drifted)
            .sla(0.25)
            .build()
            .expect("session");
        let rec = advisor
            .replan_with(&current, "dot", &MigrationBudget::zero())
            .expect("zero-budget replan");
        prop_assert!(rec.plan.steps.is_empty());
        prop_assert_eq!(rec.plan.final_layout.assignment(), current.assignment());
        prop_assert_eq!(rec.plan.total_bytes, 0.0);
        prop_assert_eq!(rec.plan.total_cents, 0.0);
        prop_assert_eq!(rec.plan.break_even_hours, 0.0);
        prop_assert!(matches!(
            rec.plan.decision,
            MigrationDecision::Stay | MigrationDecision::Unchanged
        ));
    }

    /// Procedure 2's move scores stay finite for any schema and drift —
    /// even when a placement's cost delta degenerates to (near-)zero, the
    /// guarded ratio must never leak a NaN or infinity into the ordering.
    #[test]
    fn move_scores_stay_finite_under_any_drift(
        schema in arb_schema(),
        shift in -0.95..0.95f64,
        scale in 0.02..20.0f64,
    ) {
        let base = workload_for(&schema);
        let drifted = drift::scale_throughput(&drift::shift_read_write(&base, shift), scale);
        for pool in [catalog::box2(), catalog::full_pool()] {
            let advisor = Advisor::builder(&schema, &pool, &drifted)
                .sla(0.25)
                .build()
                .expect("session");
            let cx = advisor.context();
            for mv in enumerate_moves(cx.problem, cx.profile) {
                prop_assert!(
                    mv.score.is_finite(),
                    "move of group {} to {:?} scored {}",
                    mv.group_index, mv.placement, mv.score
                );
            }
        }
    }

    /// A scheduled replan is total: whatever the deployed layout and
    /// in-flight SLA ratio (including out-of-range ones), it answers with
    /// a plan or a typed error — and every plan's waves partition the
    /// steps with a makespan inside the sequential envelope.
    #[test]
    fn scheduled_replans_are_total_and_keep_the_envelope(
        schema in arb_schema(),
        shift in -0.8..0.8f64,
        scale in 0.05..10.0f64,
        current_seed in proptest::collection::vec(0usize..3, 12),
        sla_ratio in (proptest::bool::ANY, 0.01..1.5f64)
            .prop_map(|(set, r)| set.then_some(r)),
    ) {
        let pool = catalog::box2();
        let base = workload_for(&schema);
        let drifted = drift::scale_throughput(&drift::shift_read_write(&base, shift), scale);
        let current = Layout::from_assignment(
            (0..schema.object_count())
                .map(|i| ClassId(current_seed[i % current_seed.len()]))
                .collect(),
        );
        let advisor = Advisor::builder(&schema, &pool, &drifted)
            .sla(0.25)
            .build()
            .expect("session");
        let opts = ReplanOptions {
            budget: MigrationBudget::unbounded(),
            sla_during_migration: sla_ratio,
        };
        // `Err` is a legitimate answer (Infeasible for tight ratios,
        // InvalidRequest for ratios outside (0, 1]); panicking is not.
        if let Ok(rec) = advisor.replan_scheduled(&current, "dot", &opts) {
            let sched = &rec.plan.schedule;
            let flattened: Vec<usize> =
                sched.waves.iter().flat_map(|w| w.steps.clone()).collect();
            prop_assert_eq!(flattened, (0..rec.plan.steps.len()).collect::<Vec<_>>());
            let tol = 1e-9 * sched.sequential_seconds.max(1.0);
            prop_assert!(
                sched.makespan_seconds <= sched.sequential_seconds + tol,
                "makespan {} exceeds sequential {}",
                sched.makespan_seconds, sched.sequential_seconds
            );
            prop_assert!(sched.makespan_seconds.is_finite() && sched.makespan_seconds >= 0.0);
            for w in &sched.waves {
                prop_assert!(w.seconds.is_finite() && w.seconds >= 0.0);
                prop_assert!(w.inflight_rate_cents_per_hour.is_finite());
            }
        }
    }
}

/// Deterministic spot-check kept outside proptest: the synthetic
/// mixed-workload scenario exercises the exact conservation identity at
/// full precision on a layout the optimizer itself produced.
#[test]
fn conservation_holds_on_an_optimizer_produced_layout() {
    let schema = synth::bench_schema(2_000_000.0, 120.0);
    let pool = catalog::box2();
    let before = synth::mixed_workload(&schema);
    let current = Advisor::builder(&schema, &pool, &before)
        .sla(0.25)
        .build()
        .unwrap()
        .recommend("dot")
        .unwrap()
        .layout;
    let after = drift::shift_read_write(&before, -0.5);
    let advisor = Advisor::builder(&schema, &pool, &after)
        .sla(0.25)
        .build()
        .unwrap();
    let rec = advisor.replan(&current).unwrap();
    let sum: f64 = rec
        .plan
        .steps
        .iter()
        .map(|s| s.toc_delta_cents_per_hour)
        .sum();
    let end_to_end = toc_rate_cents_per_hour(&advisor.context().estimate(&rec.plan.final_layout))
        - toc_rate_cents_per_hour(&rec.current_estimate);
    assert!((sum - end_to_end).abs() < 1e-12);
}
