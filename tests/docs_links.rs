//! Markdown link check over `README.md` and `docs/`: every relative link
//! must resolve to a file in the repo, and every `#anchor` into a markdown
//! file must match a heading there — so `docs/PAPER_MAP.md` (and anything
//! linking into it) can never dangle. The CI docs job runs exactly this
//! test (`cargo test --test docs_links`).

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The markdown files under check: README.md plus everything in docs/.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    assert!(
        files.iter().any(|f| f.ends_with("docs/PAPER_MAP.md")),
        "docs/PAPER_MAP.md must exist (the README links to it)"
    );
    files
}

/// Extract `[text](target)` link targets, skipping fenced code blocks.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(len) = line[start..].find(')') {
                    targets.push(line[start..start + len].to_string());
                    i = start + len;
                }
            }
            i += 1;
        }
    }
    targets
}

/// GitHub-style anchor slug of a heading: lowercase, spaces to dashes,
/// punctuation dropped.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// All heading anchors of a markdown file.
fn anchors(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            out.push(slug(line.trim_start_matches('#')));
        }
    }
    out
}

#[test]
fn relative_links_and_anchors_resolve() {
    let root = repo_root();
    let mut failures = Vec::new();
    for file in doc_files() {
        let text = std::fs::read_to_string(&file).expect("read markdown");
        let dir = file.parent().unwrap_or(Path::new("."));
        for target in link_targets(&text) {
            // External links and mailto are out of scope (offline check).
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (target.as_str(), None),
            };
            let resolved = if path_part.is_empty() {
                file.clone() // pure #anchor into the same file
            } else {
                dir.join(path_part)
            };
            if !resolved.exists() {
                failures.push(format!(
                    "{}: dangling link target {target:?}",
                    file.strip_prefix(&root).unwrap_or(&file).display()
                ));
                continue;
            }
            if let Some(anchor) = anchor {
                if resolved.extension().is_some_and(|e| e == "md") {
                    let linked = std::fs::read_to_string(&resolved).expect("read linked markdown");
                    if !anchors(&linked).iter().any(|a| a == anchor) {
                        failures.push(format!(
                            "{}: dangling anchor {target:?} (no heading slug {anchor:?} in {})",
                            file.strip_prefix(&root).unwrap_or(&file).display(),
                            resolved.strip_prefix(&root).unwrap_or(&resolved).display()
                        ));
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "dangling links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn paper_map_names_real_modules_and_tests() {
    // Every repo-relative code path the paper map cites must exist, so the
    // map cannot silently rot as modules move.
    let root = repo_root();
    let text = std::fs::read_to_string(root.join("docs/PAPER_MAP.md")).expect("read paper map");
    let mut missing = Vec::new();
    for raw in text.split('`') {
        let candidate = raw.trim();
        if (candidate.starts_with("crates/") || candidate.starts_with("tests/"))
            && !candidate.contains(' ')
            && std::path::Path::new(candidate)
                .extension()
                .is_some_and(|e| e == "rs")
            && !root.join(candidate).exists()
        {
            missing.push(candidate.to_string());
        }
    }
    assert!(
        missing.is_empty(),
        "PAPER_MAP.md cites nonexistent paths:\n{}",
        missing.join("\n")
    );
}
