//! Golden migration-schedule snapshot: the tiered-downgrade family where
//! `--sla-during-migration 0.32` **forces an extra wave** (ISSUE 10's
//! acceptance scenario), pinned to a committed expected plan pair under
//! `tests/golden/schedule_sla_extra_wave.json`.
//!
//! The family: four index-free tables with steeply tiered scan heat on the
//! full five-class catalog. The deployed layout overpays (hot table on
//! H-SSD); the solver's target tiers everything down onto striped and
//! plain HDD. Unconstrained, two of the three transfers ride disjoint
//! lanes and pack into one wave — makespan beats the sequential copy. At
//! an in-flight SLA of 0.32 the packed wave's contention estimate breaches
//! the ratio, the scheduler splits it, and the plan runs one wave longer
//! at the sequential makespan while landing on the bit-identical layout.
//!
//! Comparison is **structural** (parse, then `assert_eq!`), after zeroing
//! wall-clock provenance. Both plans replay under cache off / cold / warm
//! and must match bit for bit before the golden comparison runs.
//!
//! To regenerate after an intentional behaviour change:
//! `UPDATE_GOLDEN=1 cargo test --test schedule_golden`.

use dot_core::advisor::Advisor;
use dot_core::replan::{MigrationBudget, ReplanOptions, ReplanRecommendation};
use dot_core::toc::CachedEstimator;
use dot_dbms::query::{QuerySpec, ReadOp, Rel, ScanSpec};
use dot_dbms::{Layout, SchemaBuilder};
use dot_storage::{catalog, ClassId};
use dot_workloads::Workload;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;

/// The committed artifact: the same migration planned without and with
/// the in-flight SLA, so the diff *is* the wave split.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct ScheduleGolden {
    unconstrained: ReplanRecommendation,
    sla_constrained: ReplanRecommendation,
}

fn tiered_schema() -> dot_dbms::Schema {
    let mut b = SchemaBuilder::new("tiered");
    for (name, rows, bytes) in [
        ("hot", 800_000.0, 120.0),
        ("warm", 1_200_000.0, 120.0),
        ("cool", 2_000_000.0, 120.0),
        ("cold", 3_000_000.0, 120.0),
    ] {
        b = b.table(name, rows, bytes);
    }
    b.build()
}

fn tiered_workload(schema: &dot_dbms::Schema) -> Workload {
    let weights = [400.0, 60.0, 6.0, 1.0];
    let queries = schema
        .tables()
        .iter()
        .zip(weights)
        .map(|(t, w)| {
            QuerySpec::read(
                &format!("scan_{}", t.name),
                ReadOp::of(Rel::Scan(ScanSpec::full(t.id))),
            )
            .with_weight(w)
        })
        .collect();
    Workload::dss("tiered", queries)
}

fn deployed() -> Layout {
    Layout::from_assignment(vec![ClassId(4), ClassId(2), ClassId(3), ClassId(0)])
}

fn strip(mut rec: ReplanRecommendation) -> ReplanRecommendation {
    rec.target.provenance.elapsed_ms = 0;
    rec
}

fn plan_pair(cache: Option<Arc<CachedEstimator>>) -> ScheduleGolden {
    let schema = tiered_schema();
    let pool = catalog::full_pool();
    let workload = tiered_workload(&schema);
    let mut builder = Advisor::builder(&schema, &pool, &workload).sla(0.4);
    if let Some(cache) = cache {
        builder = builder.toc_cache(cache);
    }
    let advisor = builder.build().expect("session");
    let current = deployed();
    let unconstrained = strip(
        advisor
            .replan_scheduled(&current, "dot", &ReplanOptions::default())
            .expect("unconstrained plan"),
    );
    let sla_constrained = strip(
        advisor
            .replan_scheduled(
                &current,
                "dot",
                &ReplanOptions {
                    budget: MigrationBudget::unbounded(),
                    sla_during_migration: Some(0.32),
                },
            )
            .expect("constrained plan"),
    );
    ScheduleGolden {
        unconstrained,
        sla_constrained,
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/schedule_sla_extra_wave.json")
}

#[test]
fn the_sla_forced_extra_wave_matches_the_golden_plan() {
    let off = plan_pair(None);
    let cache = Arc::new(CachedEstimator::new());
    let cold = plan_pair(Some(Arc::clone(&cache)));
    let warm = plan_pair(Some(cache));
    assert_eq!(off, cold, "cache-off and cache-cold plans differ");
    assert_eq!(off, warm, "cache-off and cache-warm plans differ");

    // The snapshot must actually witness the acceptance scenario.
    assert!(
        off.unconstrained
            .plan
            .schedule
            .waves
            .iter()
            .any(|w| w.steps.len() >= 2),
        "the unconstrained plan must pack a multi-transfer wave"
    );
    assert!(
        off.sla_constrained.plan.schedule.waves.len() > off.unconstrained.plan.schedule.waves.len(),
        "the SLA must force an extra wave: {} vs {}",
        off.sla_constrained.plan.schedule.waves.len(),
        off.unconstrained.plan.schedule.waves.len()
    );
    assert!(
        off.unconstrained.plan.schedule.makespan_seconds
            < off.unconstrained.plan.schedule.sequential_seconds,
        "the packed plan must beat the sequential copy"
    );
    assert_eq!(
        off.unconstrained.plan.final_layout, off.sla_constrained.plan.final_layout,
        "the SLA changes the packing, never the destination"
    );

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let json = serde_json::to_string_pretty(&off).expect("plans serialize");
        std::fs::write(&path, json + "\n").expect("write golden file");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "no golden plan at {} ({e}); run UPDATE_GOLDEN=1 \
             cargo test --test schedule_golden to create it",
            path.display()
        )
    });
    let expected: ScheduleGolden =
        serde_json::from_str(&committed).expect("golden plan parses structurally");
    assert_eq!(
        off, expected,
        "the scheduled plan drifted from the committed golden; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1 cargo \
         test --test schedule_golden"
    );
}
