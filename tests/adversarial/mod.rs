//! Shared harness for the adversarial controller fuzzer: hostile-trace
//! cases, an *independent* re-implementation of the controller's anti-flap
//! contract checked against its event log, a deterministic splitmix64
//! case generator, and a greedy shrinker that minimizes failing traces
//! before they are committed as regression files.
//!
//! The harness deliberately re-derives the latch/cool-down state machine
//! from the `ControllerConfig` and the `Observed` scores alone — never
//! from the controller's internals — so a divergence between the
//! documented contract and the implementation shows up as a violation.

use dot_core::advisor::{Advisor, ProvisionError};
use dot_core::controller::{
    expand_trace, ControlEvent, Controller, ControllerConfig, DeferReason, TraceStep, TriggerReason,
};
use dot_core::replan::MigrationDecision;
use dot_dbms::query::{Op, QuerySpec, ReadOp, Rel, ScanSpec, UpdateOp};
use dot_dbms::{Schema, SchemaBuilder};
use dot_storage::catalog;
use dot_workloads::{drift, Workload};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One hostile scenario: a controller configuration plus the drift trace
/// thrown at it. Serializable so failing cases shrink down to committed
/// regression files under `tests/golden/adversarial/`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostileCase {
    /// Stable name; doubles as the regression file stem.
    pub name: String,
    /// Relative SLA the controller supervises under.
    pub sla: f64,
    /// The controller's trigger thresholds and replan policy.
    pub config: ControllerConfig,
    /// Deploy a uniform all-HDD layout instead of the solver's
    /// recommendation: a deliberately bad deployment with real SLA
    /// pressure, where a zero budget makes every verdict a `Stay` (the
    /// latch families need this).
    #[serde(default)]
    pub deploy_hdd: bool,
    /// The scripted drift trace (same vocabulary as `--trace` files).
    pub trace: Vec<TraceStep>,
}

/// The pinned outcome summary a committed regression case replays to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Ticks ingested.
    pub ticks: u64,
    /// Ticks that pulled the trigger, in order.
    pub triggered: Vec<u64>,
    /// Over-threshold observations suppressed by the cool-down window.
    pub deferred_cooling: u64,
    /// Over-threshold observations suppressed by the hysteresis latch.
    pub deferred_latched: u64,
    /// Migrations adopted.
    pub applied: u64,
}

/// A regression file: the case plus its pinned verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionCase {
    /// The hostile case.
    pub case: HostileCase,
    /// What replaying it must produce.
    pub verdict: Verdict,
}

/// `tests/golden/adversarial/` in the source tree.
pub fn regression_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/adversarial")
}

/// One small table with a primary index — the `controller_props` shape,
/// small enough that hundreds of fuzz cases stay fast.
pub fn tiny_schema() -> Schema {
    SchemaBuilder::new("adv-fuzz")
        .table("t0", 400_000.0, 120.0)
        .primary_index(8.0)
        .build()
}

/// A mixed read/write workload, so read/write shifts move the signature.
pub fn mixed_workload(schema: &Schema) -> Workload {
    let table = schema.tables()[0].id;
    let pk = schema.primary_index_of(table).expect("pk").id;
    Workload::dss(
        "adv-fuzz",
        vec![
            QuerySpec::read("scan", ReadOp::of(Rel::Scan(ScanSpec::full(table)))),
            QuerySpec::read(
                "probe",
                ReadOp::of(Rel::Scan(ScanSpec::indexed(table, 0.001, pk))),
            ),
            QuerySpec::transaction(
                "upd",
                vec![Op::Update(UpdateOp {
                    table,
                    rows: 150.0,
                    via: Some(pk),
                    updates_indexed_key: false,
                })],
            ),
        ],
    )
}

/// Replay a hostile case through a fresh controller and return its full
/// event log. A mid-trace typed error is itself reported as a violation
/// by [`check_invariants`]' caller, so it maps to `Err` here.
pub fn run_case(case: &HostileCase) -> Result<Vec<ControlEvent>, ProvisionError> {
    let schema = tiny_schema();
    let pool = catalog::box2();
    let baseline = mixed_workload(&schema);
    let observations = expand_trace(&schema, &baseline, &case.trace)?;
    let deployed = if case.deploy_hdd {
        dot_dbms::Layout::uniform(
            pool.class_by_name("HDD").expect("box2 has an HDD tier").id,
            schema.object_count(),
        )
    } else {
        Advisor::builder(&schema, &pool, &baseline)
            .sla(case.sla)
            .build()?
            .recommend(&case.config.solver)?
            .layout
    };
    let mut controller = Controller::new(
        &schema,
        &pool,
        &baseline,
        deployed,
        case.sla,
        case.config.clone(),
    )?;
    controller.run_trace(&observations)?;
    Ok(controller.events().to_vec())
}

/// Summarize an event log into the pinned [`Verdict`].
pub fn verdict_of(events: &[ControlEvent]) -> Verdict {
    let mut verdict = Verdict {
        ticks: 0,
        triggered: Vec::new(),
        deferred_cooling: 0,
        deferred_latched: 0,
        applied: 0,
    };
    for event in events {
        match event {
            ControlEvent::Observed { .. } => verdict.ticks += 1,
            ControlEvent::Triggered { tick, .. } => verdict.triggered.push(*tick),
            ControlEvent::Deferred { reason, .. } => match reason {
                DeferReason::CoolingDown { .. } => verdict.deferred_cooling += 1,
                DeferReason::Latched => verdict.deferred_latched += 1,
            },
            ControlEvent::Applied { .. } => verdict.applied += 1,
            ControlEvent::Planned { .. } => {}
        }
    }
    verdict
}

/// Check the controller's anti-flap contract against its event log,
/// re-deriving the latch and cool-down state independently. Returns the
/// first violation as a human-readable description.
pub fn check_invariants(events: &[ControlEvent], config: &ControllerConfig) -> Result<(), String> {
    // Group the flat log into per-tick runs (events stay in tick order).
    let mut ticks: Vec<Vec<&ControlEvent>> = Vec::new();
    for event in events {
        match event {
            ControlEvent::Observed { tick, .. } => {
                if *tick as usize != ticks.len() {
                    return Err(format!(
                        "Observed tick {tick} out of order (expected {})",
                        ticks.len()
                    ));
                }
                ticks.push(vec![event]);
            }
            other => match ticks.last_mut() {
                Some(run) => run.push(other),
                None => return Err(format!("{other:?} before any Observed event")),
            },
        }
    }

    // The independently tracked guard state.
    let mut armed = true;
    let mut latched_pressure = 0.0f64;
    let mut last_trigger: Option<u64> = None;

    for run in &ticks {
        let ControlEvent::Observed {
            tick,
            distance,
            sla_pressure,
            ..
        } = run[0]
        else {
            unreachable!("runs start at their Observed event");
        };
        let (tick, distance, pressure) = (*tick, *distance, *sla_pressure);
        if !(0.0..=1.0).contains(&distance) {
            return Err(format!("tick {tick}: distance {distance} out of [0, 1]"));
        }
        let drift_over = distance >= config.drift_threshold;
        let sla_over = pressure > config.sla_grace;

        // Re-arm exactly per the documented hysteresis contract.
        let cleared = distance <= config.clear_fraction * config.drift_threshold
            && pressure <= config.sla_grace;
        if !armed && (cleared || pressure > latched_pressure) {
            armed = true;
        }

        if !(drift_over || sla_over) {
            if run.len() != 1 {
                return Err(format!(
                    "tick {tick}: sub-threshold observation (distance {distance}, \
                     pressure {pressure}) produced extra events: {run:?}"
                ));
            }
            continue;
        }

        // Over threshold: exactly one of Triggered / Deferred must follow.
        match run.get(1) {
            None => {
                return Err(format!(
                    "tick {tick}: over-threshold observation (distance {distance}, \
                     pressure {pressure}) was silently swallowed"
                ))
            }
            Some(ControlEvent::Deferred {
                reason: DeferReason::Latched,
                ..
            }) => {
                if armed {
                    return Err(format!(
                        "tick {tick}: Latched defer while the latch is armed"
                    ));
                }
                if run.len() != 2 {
                    return Err(format!("tick {tick}: events after a defer: {run:?}"));
                }
            }
            Some(ControlEvent::Deferred {
                reason: DeferReason::CoolingDown { last_trigger_tick },
                ..
            }) => {
                if !armed {
                    return Err(format!(
                        "tick {tick}: CoolingDown defer on an unarmed controller \
                         (Latched must win)"
                    ));
                }
                if Some(*last_trigger_tick) != last_trigger {
                    return Err(format!(
                        "tick {tick}: CoolingDown names trigger tick {last_trigger_tick}, \
                         actual last trigger {last_trigger:?}"
                    ));
                }
                if tick - last_trigger_tick >= config.cooldown_ticks {
                    return Err(format!(
                        "tick {tick}: CoolingDown defer outside the window \
                         (last trigger {last_trigger_tick}, cooldown {})",
                        config.cooldown_ticks
                    ));
                }
                if run.len() != 2 {
                    return Err(format!("tick {tick}: events after a defer: {run:?}"));
                }
            }
            Some(ControlEvent::Triggered { reason, .. }) => {
                if !armed {
                    return Err(format!("tick {tick}: trigger on an unarmed controller"));
                }
                if let Some(last) = last_trigger {
                    if tick - last < config.cooldown_ticks {
                        return Err(format!(
                            "tick {tick}: trigger inside the cool-down window of \
                             tick {last} (cooldown {})",
                            config.cooldown_ticks
                        ));
                    }
                }
                let reason_ok = matches!(
                    (reason, drift_over, sla_over),
                    (TriggerReason::DriftAndSla { .. }, true, true)
                        | (TriggerReason::Drift { .. }, true, false)
                        | (TriggerReason::Sla { .. }, false, true)
                );
                if !reason_ok {
                    return Err(format!(
                        "tick {tick}: trigger reason {reason:?} contradicts the \
                         signals (drift_over={drift_over}, sla_over={sla_over})"
                    ));
                }
                last_trigger = Some(tick);

                let Some(ControlEvent::Planned {
                    decision,
                    total_bytes,
                    total_cents,
                    ..
                }) = run.get(2)
                else {
                    return Err(format!("tick {tick}: trigger without a Planned verdict"));
                };
                if let Some(max) = config.budget.max_bytes {
                    if *total_bytes > max + 1e-6 {
                        return Err(format!(
                            "tick {tick}: plan moves {total_bytes} bytes over the \
                             {max}-byte budget"
                        ));
                    }
                }
                if let Some(max) = config.budget.max_cents {
                    if *total_cents > max + 1e-6 {
                        return Err(format!(
                            "tick {tick}: plan spends {total_cents} cents over the \
                             {max}-cent budget"
                        ));
                    }
                }
                match decision {
                    MigrationDecision::Migrate | MigrationDecision::Partial { .. } => {
                        let Some(ControlEvent::Applied { bytes_moved, .. }) = run.get(3) else {
                            return Err(format!(
                                "tick {tick}: migrating verdict {decision:?} without \
                                 an Applied event"
                            ));
                        };
                        if bytes_moved != total_bytes {
                            return Err(format!(
                                "tick {tick}: Applied moves {bytes_moved} bytes but \
                                 the plan totals {total_bytes}"
                            ));
                        }
                    }
                    MigrationDecision::Unchanged => {
                        if run.len() != 3 {
                            return Err(format!(
                                "tick {tick}: Unchanged verdict with extra events: {run:?}"
                            ));
                        }
                    }
                    MigrationDecision::Stay => {
                        if run.len() != 3 {
                            return Err(format!(
                                "tick {tick}: Stay verdict with extra events: {run:?}"
                            ));
                        }
                        armed = false;
                        latched_pressure = pressure;
                    }
                }
            }
            Some(other) => {
                return Err(format!(
                    "tick {tick}: over-threshold observation followed by {other:?}, \
                     not a Triggered/Deferred event"
                ))
            }
        }
    }
    Ok(())
}

/// Run a case end to end and return the first contract violation, if any
/// (a typed mid-trace error counts: hostile but *valid* traces must never
/// kill the loop).
// The module is compiled into both adversarial test binaries; the
// regression replayer (`adversarial_regressions`) uses only the replay
// half above, so the generator/shrinker half below is dead code there.
#[allow(dead_code)]
pub fn violation_of(case: &HostileCase) -> Option<String> {
    match run_case(case) {
        Err(e) => Some(format!("typed error mid-trace: {e:?}")),
        Ok(events) => check_invariants(&events, &case.config).err(),
    }
}

/// Deterministic splitmix64 stream, the same generator the execution
/// simulator seeds noise with — no external RNG crates.
#[allow(dead_code)]
pub struct Rng(u64);

#[allow(dead_code)]
impl Rng {
    /// A stream for one named fuzz case.
    pub fn for_case(suite: &str, case: u64) -> Rng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in suite.bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Rng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Drift distance of a pure read/write shift against the fuzz baseline —
/// the scale the generators aim their thresholds at.
#[allow(dead_code)]
pub fn shift_distance(amp: f64) -> f64 {
    let schema = tiny_schema();
    let baseline = mixed_workload(&schema);
    drift::profile_distance(&baseline, &drift::shift_read_write(&baseline, amp))
}

#[allow(dead_code)]
fn shift_step(shift: f64) -> TraceStep {
    TraceStep {
        shift: Some(shift),
        scale: None,
        phase: None,
        repeat: None,
    }
}

/// Generate one hostile case. Four families, all tuned toward the
/// controller's decision boundaries rather than uniform noise:
///
/// * **boundary** — oscillate right at the drift threshold (amplitudes
///   whose distance lands within ±10% of it), hunting hysteresis flapping;
/// * **ramp** — creep upward strictly *below* the threshold, hunting
///   spurious triggers;
/// * **spike** — hammer inside the cool-down window, hunting triggers that
///   ignore it or defers that misattribute the window;
/// * **latch** — a zero migration budget forces every verdict to `Stay`,
///   then oscillate across the clear threshold, hunting latches that
///   never re-arm or defers that re-litigate the verdict.
#[allow(dead_code)]
pub fn generate_case(case_index: u64) -> HostileCase {
    let mut rng = Rng::for_case("adversarial", case_index);
    let family = rng.below(0, 4);
    let cooldown = rng.below(0, 5) as u64;
    let clear_fraction = rng.uniform(0.0, 1.0);
    // Half the cases keep SLA pressure in play; half isolate drift.
    let sla_grace = if rng.next_u64() % 2 == 0 { 0.02 } else { 1e9 };
    let mut config = ControllerConfig {
        clear_fraction,
        sla_grace,
        cooldown_ticks: cooldown,
        ..ControllerConfig::default()
    };
    let mut trace = Vec::new();
    let name;
    match family {
        0 => {
            name = format!("boundary-{case_index}");
            let amp = rng.uniform(0.15, 0.6);
            config.drift_threshold = (shift_distance(amp) * rng.uniform(0.9, 1.1)).clamp(1e-6, 1.0);
            let lull = amp * rng.uniform(0.0, 0.5);
            for k in 0..rng.below(4, 12) {
                trace.push(shift_step(if k % 2 == 0 { amp } else { lull }));
            }
        }
        1 => {
            name = format!("ramp-{case_index}");
            let steps = rng.below(4, 12);
            let amp = rng.uniform(0.2, 0.6);
            config.drift_threshold =
                (shift_distance(amp) * rng.uniform(1.01, 1.6)).clamp(1e-6, 1.0);
            for k in 1..=steps {
                trace.push(shift_step(amp * k as f64 / steps as f64));
            }
        }
        2 => {
            name = format!("spike-{case_index}");
            config.drift_threshold = rng.uniform(0.01, 0.1);
            config.cooldown_ticks = rng.below(2, 6) as u64;
            let spike = rng.uniform(0.3, 0.7);
            for _ in 0..rng.below(2, 5) {
                trace.push(shift_step(spike));
                let inside = rng.below(1, config.cooldown_ticks as usize + 1);
                trace.push(shift_step(spike * rng.uniform(0.8, 1.0)));
                trace.push(TraceStep {
                    shift: Some(spike * 0.05),
                    scale: None,
                    phase: None,
                    repeat: Some(inside),
                });
            }
        }
        _ => {
            name = format!("latch-{case_index}");
            // A bad all-HDD deployment under real SLA pressure, with no
            // migration budget: every triggered plan is a Stay, engaging
            // the hysteresis latch at that tick's pressure.
            config.budget = dot_core::replan::MigrationBudget::zero();
            config.cooldown_ticks = 0;
            config.sla_grace = 0.0;
            config.drift_threshold = rng.uniform(0.5, 1.0);
            // SLA pressure is the worst per-query margin excess, so
            // reweighting shifts cannot move it — only a different query
            // set can. Engage the latch on one *phase* first (whichever
            // presses less), then flip phases: the harder-pressing phase
            // must pierce the latch, everything else must latch-defer.
            let first = if rng.next_u64() % 2 == 0 {
                "baseline"
            } else {
                "analytical"
            };
            for round in 0..rng.below(2, 4) {
                let other = if first == "baseline" {
                    "analytical"
                } else {
                    "baseline"
                };
                let phase = if round % 2 == 0 { first } else { other };
                trace.push(TraceStep {
                    shift: None,
                    scale: None,
                    phase: Some(phase.to_owned()),
                    repeat: Some(rng.below(2, 4)),
                });
                trace.push(shift_step(rng.uniform(0.0, 0.3)));
            }
        }
    }
    HostileCase {
        name,
        sla: 0.25,
        config,
        deploy_hdd: family == 3,
        trace,
    }
}

/// Greedily shrink a failing case: drop whole steps, then pull shift
/// amplitudes toward zero and repeats toward one, keeping every candidate
/// that still violates the contract. Bounded, deterministic, no RNG.
#[allow(dead_code)]
pub fn shrink(case: &HostileCase) -> HostileCase {
    let mut best = case.clone();
    let mut budget = 200usize;
    loop {
        let mut improved = false;
        // Pass 1: drop each step.
        let mut i = 0;
        while i < best.trace.len() && budget > 0 {
            if best.trace.len() > 1 {
                let mut candidate = best.clone();
                candidate.trace.remove(i);
                budget -= 1;
                if violation_of(&candidate).is_some() {
                    best = candidate;
                    improved = true;
                    continue; // same index now names the next step
                }
            }
            i += 1;
        }
        // Pass 2: soften each step.
        for i in 0..best.trace.len() {
            if budget == 0 {
                break;
            }
            let step = &best.trace[i];
            let mut softer = Vec::new();
            if let Some(shift) = step.shift {
                if shift.abs() > 1e-3 {
                    softer.push(TraceStep {
                        shift: Some(shift / 2.0),
                        ..step.clone()
                    });
                }
            }
            if step.repeat.unwrap_or(1) > 1 {
                softer.push(TraceStep {
                    repeat: Some(step.repeat.unwrap_or(1) / 2),
                    ..step.clone()
                });
            }
            for candidate_step in softer {
                let mut candidate = best.clone();
                candidate.trace[i] = candidate_step;
                budget = budget.saturating_sub(1);
                if violation_of(&candidate).is_some() {
                    best = candidate;
                    improved = true;
                    break;
                }
            }
        }
        if !improved || budget == 0 {
            return best;
        }
    }
}
