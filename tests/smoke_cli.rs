//! End-to-end smoke tests for the `dot-cli` binary: every subcommand runs
//! against a real (small) problem and produces the expected surface, so the
//! quickstart path documented in the README can never silently rot.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dot-cli"))
}

/// Write a small problem file into the target directory and return its path.
fn problem_file(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create target tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write problem file");
    path
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}, stderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn catalog_lists_builtin_pools_and_presets() {
    let out = cli().arg("catalog").output().expect("run dot-cli");
    let text = stdout_of(&out);
    for expected in [
        "built-in pools",
        "Box 1",
        "Box 2",
        "H-SSD",
        "database presets",
    ] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }
}

#[test]
fn provision_recommends_a_layout_for_a_small_dss_problem() {
    let path = problem_file(
        "dss.json",
        r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 0.5 }"#,
    );
    let out = cli()
        .arg("provision")
        .arg(&path)
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    assert!(
        text.contains("recommended layout:"),
        "no layout in:\n{text}"
    );
    assert!(text.contains("PSR"), "no PSR report in:\n{text}");
}

#[test]
fn provision_json_emits_parsable_evaluation() {
    let path = problem_file(
        "dss_json.json",
        r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 0.5 }"#,
    );
    let out = cli()
        .arg("provision")
        .arg(&path)
        .arg("--json")
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    let value: serde::Value = serde_json::from_str(&text).expect("valid JSON evaluation");
    let object = value.as_object().expect("top-level object");
    for key in ["label", "layout_cost_cents_per_hour", "placements"] {
        assert!(
            object.iter().any(|(k, _)| k == key),
            "missing key {key:?} in:\n{text}"
        );
    }
}

#[test]
fn explain_prints_plans_for_the_premium_layout() {
    let path = problem_file(
        "explain.json",
        r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 0.5 }"#,
    );
    let out = cli()
        .arg("explain")
        .arg(&path)
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    assert!(text.contains("workload:"), "no workload header in:\n{text}");
}

#[test]
fn bad_usage_and_bad_input_fail_cleanly() {
    let out = cli().output().expect("run dot-cli");
    assert!(!out.status.success(), "no-arg run must fail");

    let out = cli().arg("frobnicate").output().expect("run dot-cli");
    assert!(!out.status.success(), "unknown subcommand must fail");

    let path = problem_file(
        "bad_sla.json",
        r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 7.0 }"#,
    );
    let out = cli()
        .arg("provision")
        .arg(&path)
        .output()
        .expect("run dot-cli");
    assert!(!out.status.success(), "out-of-range SLA must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("sla"), "unhelpful error: {err}");
}
