//! End-to-end smoke tests for the `dot-cli` binary: every subcommand runs
//! against a real (small) problem and produces the expected surface, and
//! every `ProvisionError` variant maps to its own exit code — so the
//! scriptable surface documented in the README can never silently rot.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dot-cli"))
}

/// Write a small problem file into the target directory and return its path.
fn problem_file(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create target tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write problem file");
    path
}

const DSS_PROBLEM: &str = r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 0.5 }"#;
const OLTP_PROBLEM: &str = r#"{ "pool": "box2", "database": "tpcc:2", "sla": 0.25 }"#;

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}, stderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Run `provision` on `problem`, assert the expected exit code, and return
/// stderr for message checks.
fn provision_fails(name: &str, problem: &str, extra: &[&str], code: i32) -> String {
    let path = problem_file(name, problem);
    let out = cli()
        .arg("provision")
        .arg(&path)
        .args(extra)
        .output()
        .expect("run dot-cli");
    assert_eq!(
        out.status.code(),
        Some(code),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn catalog_lists_builtin_pools_and_presets() {
    let out = cli().arg("catalog").output().expect("run dot-cli");
    let text = stdout_of(&out);
    for expected in [
        "built-in pools",
        "Box 1",
        "Box 2",
        "H-SSD",
        "database presets",
    ] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }
}

#[test]
fn solvers_lists_every_registered_optimizer() {
    let out = cli().arg("solvers").output().expect("run dot-cli");
    let text = stdout_of(&out);
    for id in [
        "dot",
        "dot-relaxed",
        "es",
        "es-additive",
        "oa",
        "all-hssd",
        "all-hdd",
        "index-split",
        "ablation:group:time-per-cost",
        "ablation:object:unsorted",
    ] {
        assert!(text.contains(id), "missing solver {id:?} in:\n{text}");
    }
}

#[test]
fn provision_recommends_a_layout_for_a_small_dss_problem() {
    let path = problem_file("dss.json", DSS_PROBLEM);
    let out = cli()
        .arg("provision")
        .arg(&path)
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    assert!(text.contains("recommended layout"), "no layout in:\n{text}");
    assert!(text.contains("bill:"), "no bill in:\n{text}");
    assert!(text.contains("PSR"), "no PSR report in:\n{text}");
}

#[test]
fn provision_json_emits_a_serialized_recommendation_per_solver() {
    // The acceptance surface: every solver family answers with the same
    // Recommendation shape. (es-additive needs the OLTP problem; "es" is
    // exercised on the 8-object subset.)
    let dss = problem_file("dss_json.json", DSS_PROBLEM);
    let oltp = problem_file("oltp_json.json", OLTP_PROBLEM);
    let cases: &[(&PathBuf, &str)] = &[
        (&dss, "dot"),
        (&dss, "dot-relaxed"),
        (&dss, "es"),
        (&oltp, "es-additive"),
        (&dss, "oa"),
        (&dss, "all-hssd"),
        (&dss, "all-premium"),
        (&dss, "ablation:group:time-per-cost"),
        (&dss, "ablation:object:unsorted"),
    ];
    for (path, solver) in cases {
        let out = cli()
            .args(["provision"])
            .arg(path)
            .args(["--solver", solver, "--json"])
            .output()
            .expect("run dot-cli");
        let text = stdout_of(&out);
        let value: serde::Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{solver}: bad JSON ({e})"));
        let object = value.as_object().expect("top-level object");
        for key in [
            "label",
            "layout",
            "placements",
            "estimate",
            "bill",
            "provenance",
        ] {
            assert!(
                object.iter().any(|(k, _)| k == key),
                "{solver}: missing key {key:?} in:\n{text}"
            );
        }
        // Provenance names the solver and carries serialized timing.
        let (_, provenance) = object.iter().find(|(k, _)| k == "provenance").unwrap();
        let provenance = provenance.as_object().unwrap();
        let (_, id) = provenance.iter().find(|(k, _)| k == "solver").unwrap();
        assert_eq!(id.as_str(), Some(*solver));
        assert!(
            provenance.iter().any(|(k, _)| k == "elapsed_ms"),
            "{solver}: elapsed_ms must serialize"
        );
    }
}

#[test]
fn explain_prints_plans_for_the_premium_layout() {
    let path = problem_file("explain.json", DSS_PROBLEM);
    let out = cli()
        .arg("explain")
        .arg(&path)
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    assert!(text.contains("workload:"), "no workload header in:\n{text}");
}

#[test]
fn bad_usage_fails_with_the_generic_code() {
    let out = cli().output().expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1), "no-arg run must fail with 1");

    let out = cli().arg("frobnicate").output().expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1), "unknown subcommand");
}

// One malformed-input probe per ProvisionError variant the CLI can hit,
// each with its own exit code and a message naming the offending input.

#[test]
fn out_of_range_sla_is_invalid_request_exit_2() {
    let err = provision_fails(
        "bad_sla.json",
        r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 7.0 }"#,
        &[],
        2,
    );
    assert!(err.contains("sla"), "unhelpful error: {err}");
}

#[test]
fn unparsable_problem_file_is_invalid_request_exit_2() {
    let err = provision_fails("truncated.json", r#"{ "pool": "box2", "#, &[], 2);
    assert!(err.contains("parse"), "unhelpful error: {err}");
}

#[test]
fn unknown_solver_is_exit_3_and_lists_known_ids() {
    let err = provision_fails("solver.json", DSS_PROBLEM, &["--solver", "simplex"], 3);
    assert!(err.contains("simplex") && err.contains("dot"), "{err}");
}

#[test]
fn unknown_pool_is_exit_4() {
    let err = provision_fails(
        "bad_pool.json",
        r#"{ "pool": "box9", "database": "tpch-subset:1", "sla": 0.5 }"#,
        &[],
        4,
    );
    assert!(err.contains("box9"), "{err}");
}

#[test]
fn unknown_database_preset_is_exit_5() {
    let err = provision_fails(
        "bad_preset.json",
        r#"{ "pool": "box2", "database": "tpch:1:bogus", "sla": 0.5 }"#,
        &[],
        5,
    );
    assert!(err.contains("tpch:1:bogus"), "{err}");
}

#[test]
fn unknown_engine_preset_is_exit_6() {
    let err = provision_fails(
        "bad_engine.json",
        r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 0.5, "engine": "olap" }"#,
        &[],
        6,
    );
    assert!(err.contains("olap") && err.contains("dss"), "{err}");
}

#[test]
fn infeasible_sla_is_exit_7_with_a_suggestion() {
    // Ratio 1.0 forbids any degradation; the TPC-H subset workload cannot
    // move a byte off the premium class without slowing some query, and
    // the premium class itself is capped via an inline pool. Easier: a
    // custom pool is overkill — the ycsb:A update-heavy mix at ratio 1.0
    // keeps everything premium, which IS feasible. So probe with tpcc at a
    // ratio above what any off-premium layout can meet but with the H-SSD
    // capped so the premium layout is out too.
    let err = provision_fails(
        "infeasible.json",
        r#"{ "pool": { "name": "Tiny", "classes": [
                { "id": 0, "name": "H-SSD", "devices": [],
                  "controller_cents": 0.0, "controller_watts": 0.0,
                  "capacity_gb": 0.8, "price_cents_per_gb_hour": 0.169,
                  "profile": { "at_c1": [0.013, 0.013, 0.015, 0.015],
                               "at_c300": [0.013, 0.013, 0.015, 0.015] } },
                { "id": 1, "name": "HDD", "devices": [],
                  "controller_cents": 0.0, "controller_watts": 0.0,
                  "capacity_gb": 1000.0, "price_cents_per_gb_hour": 0.000347,
                  "profile": { "at_c1": [0.005, 6.0, 0.006, 8.0],
                               "at_c300": [0.037, 2.4, 0.035, 3.6] } }
            ] },
            "database": "tpch-subset:1", "sla": 1.0 }"#,
        &[],
        7,
    );
    assert!(err.contains("infeasible"), "{err}");
}

#[test]
fn oversized_database_is_capacity_exceeded_exit_8() {
    let err = provision_fails(
        "capacity.json",
        r#"{ "pool": { "name": "Thimble", "classes": [
                { "id": 0, "name": "H-SSD", "devices": [],
                  "controller_cents": 0.0, "controller_watts": 0.0,
                  "capacity_gb": 0.01, "price_cents_per_gb_hour": 0.169,
                  "profile": { "at_c1": [0.013, 0.013, 0.015, 0.015],
                               "at_c300": [0.013, 0.013, 0.015, 0.015] } }
            ] },
            "database": "tpch-subset:1", "sla": 0.5 }"#,
        &[],
        8,
    );
    assert!(err.contains("capacity"), "{err}");
}

#[test]
fn solver_workload_mismatch_is_unsupported_exit_9() {
    let err = provision_fails(
        "mismatch.json",
        DSS_PROBLEM,
        &["--solver", "es-additive"],
        9,
    );
    assert!(err.contains("es-additive"), "{err}");
}

#[test]
fn json_flag_renders_the_typed_error_too() {
    let path = problem_file(
        "json_err.json",
        r#"{ "pool": "box9", "database": "tpch-subset:1", "sla": 0.5 }"#,
    );
    let out = cli()
        .arg("provision")
        .arg(&path)
        .arg("--json")
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(4));
    let text = String::from_utf8_lossy(&out.stdout);
    let value: serde::Value = serde_json::from_str(&text).expect("error serializes as JSON");
    let object = value.as_object().expect("tagged error object");
    assert!(object.iter().any(|(k, _)| k == "UnknownPool"), "{text}");
}
