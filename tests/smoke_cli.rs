//! End-to-end smoke tests for the `dot-cli` binary: every subcommand runs
//! against a real (small) problem and produces the expected surface, and
//! every `ProvisionError` variant maps to its own exit code — so the
//! scriptable surface documented in the README can never silently rot.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dot-cli"))
}

/// Write a small problem file into the target directory and return its path.
fn problem_file(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create target tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write problem file");
    path
}

const DSS_PROBLEM: &str = r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 0.5 }"#;
const OLTP_PROBLEM: &str = r#"{ "pool": "box2", "database": "tpcc:2", "sla": 0.25 }"#;

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}, stderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Run `provision` on `problem`, assert the expected exit code, and return
/// stderr for message checks.
fn provision_fails(name: &str, problem: &str, extra: &[&str], code: i32) -> String {
    let path = problem_file(name, problem);
    let out = cli()
        .arg("provision")
        .arg(&path)
        .args(extra)
        .output()
        .expect("run dot-cli");
    assert_eq!(
        out.status.code(),
        Some(code),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn catalog_lists_builtin_pools_and_presets() {
    let out = cli().arg("catalog").output().expect("run dot-cli");
    let text = stdout_of(&out);
    for expected in [
        "built-in pools",
        "Box 1",
        "Box 2",
        "H-SSD",
        "database presets",
    ] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }
}

#[test]
fn solvers_lists_every_registered_optimizer() {
    let out = cli().arg("solvers").output().expect("run dot-cli");
    let text = stdout_of(&out);
    for id in [
        "dot",
        "dot-relaxed",
        "es",
        "es-additive",
        "oa",
        "all-hssd",
        "all-hdd",
        "index-split",
        "ablation:group:time-per-cost",
        "ablation:object:unsorted",
    ] {
        assert!(text.contains(id), "missing solver {id:?} in:\n{text}");
    }
}

#[test]
fn provision_recommends_a_layout_for_a_small_dss_problem() {
    let path = problem_file("dss.json", DSS_PROBLEM);
    let out = cli()
        .arg("provision")
        .arg(&path)
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    assert!(text.contains("recommended layout"), "no layout in:\n{text}");
    assert!(text.contains("bill:"), "no bill in:\n{text}");
    assert!(text.contains("PSR"), "no PSR report in:\n{text}");
}

#[test]
fn provision_json_emits_a_serialized_recommendation_per_solver() {
    // The acceptance surface: every solver family answers with the same
    // Recommendation shape. (es-additive needs the OLTP problem; "es" is
    // exercised on the 8-object subset.)
    let dss = problem_file("dss_json.json", DSS_PROBLEM);
    let oltp = problem_file("oltp_json.json", OLTP_PROBLEM);
    let cases: &[(&PathBuf, &str)] = &[
        (&dss, "dot"),
        (&dss, "dot-relaxed"),
        (&dss, "es"),
        (&oltp, "es-additive"),
        (&dss, "oa"),
        (&dss, "all-hssd"),
        (&dss, "all-premium"),
        (&dss, "ablation:group:time-per-cost"),
        (&dss, "ablation:object:unsorted"),
    ];
    for (path, solver) in cases {
        let out = cli()
            .args(["provision"])
            .arg(path)
            .args(["--solver", solver, "--json"])
            .output()
            .expect("run dot-cli");
        let text = stdout_of(&out);
        let value: serde::Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{solver}: bad JSON ({e})"));
        let object = value.as_object().expect("top-level object");
        for key in [
            "label",
            "layout",
            "placements",
            "estimate",
            "bill",
            "provenance",
        ] {
            assert!(
                object.iter().any(|(k, _)| k == key),
                "{solver}: missing key {key:?} in:\n{text}"
            );
        }
        // Provenance names the solver and carries serialized timing.
        let (_, provenance) = object.iter().find(|(k, _)| k == "provenance").unwrap();
        let provenance = provenance.as_object().unwrap();
        let (_, id) = provenance.iter().find(|(k, _)| k == "solver").unwrap();
        assert_eq!(id.as_str(), Some(*solver));
        assert!(
            provenance.iter().any(|(k, _)| k == "elapsed_ms"),
            "{solver}: elapsed_ms must serialize"
        );
    }
}

const FLEET_MANIFEST: &str = r#"{ "workers": 4, "tenants": [
    { "name": "acme",  "pool": "box2", "database": "tpch-subset:1", "sla": 0.5 },
    { "name": "bravo", "pool": "box2", "database": "tpch-subset:1", "sla": 0.25 },
    { "pool": "box2", "database": "tpcc:2", "sla": 0.25, "solver": "es-additive" }
] }"#;

#[test]
fn fleet_provisions_a_manifest_and_reports_cache_stats() {
    let path = problem_file("fleet.json", FLEET_MANIFEST);
    let out = cli().arg("fleet").arg(&path).output().expect("run dot-cli");
    let text = stdout_of(&out);
    for expected in [
        "fleet of 3 tenant(s)",
        "acme",
        "bravo",
        "tenant-2", // unnamed tenants get positional names
        "aggregate bill (3 provisioned, 0 failed)",
        "TOC cache:",
        "hit rate",
    ] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }
}

#[test]
fn fleet_json_round_trips_through_serde() {
    let path = problem_file("fleet_json.json", FLEET_MANIFEST);
    let out = cli()
        .args(["fleet"])
        .arg(&path)
        .arg("--json")
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    // The emitted report parses back into the typed FleetReport...
    let report: dot_core::fleet::FleetReport =
        serde_json::from_str(&text).expect("fleet report deserializes");
    assert_eq!(report.tenants.len(), 3);
    assert_eq!(report.aggregate.tenants_provisioned, 3);
    assert!(
        report.cache.hits > 0,
        "shared cache must hit across tenants"
    );
    // ...and the identically-shaped tenants got bit-identical layouts.
    let acme = report.tenants[0].recommendation.as_ref().unwrap();
    assert_eq!(report.tenants[0].tenant, "acme");
    assert_eq!(report.tenants[0].solver, "dot");
    assert!(acme.provenance.layouts_investigated >= 1);
    // Re-serializing loses nothing.
    let again = serde_json::to_string(&report).expect("report re-serializes");
    let back: dot_core::fleet::FleetReport = serde_json::from_str(&again).unwrap();
    assert_eq!(back, report);
}

#[test]
fn fleet_aggregate_bill_schema_snapshot() {
    // The aggregate-bill JSON shape is scriptable surface: pin its keys.
    let path = problem_file("fleet_schema.json", FLEET_MANIFEST);
    let out = cli()
        .args(["fleet"])
        .arg(&path)
        .arg("--json")
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    let value: serde::Value = serde_json::from_str(&text).expect("valid JSON");
    let report = value.as_object().expect("top-level object");
    let report_keys: Vec<&str> = report.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(report_keys, ["tenants", "aggregate", "cache", "wall_ms"]);
    let (_, aggregate) = report.iter().find(|(k, _)| k == "aggregate").unwrap();
    let aggregate = aggregate.as_object().expect("aggregate object");
    let keys: Vec<&str> = aggregate.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "classes",
            "total_cents_per_hour",
            "tenants_provisioned",
            "tenants_failed"
        ],
        "aggregate-bill schema changed: update the README's Fleet mode section"
    );
    let (_, classes) = aggregate.iter().find(|(k, _)| k == "classes").unwrap();
    let first = classes.as_array().expect("classes array")[0]
        .as_object()
        .expect("class line object");
    let line_keys: Vec<&str> = first.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(line_keys, ["class", "gb", "cents_per_hour"]);
}

#[test]
fn fleet_malformed_manifest_is_invalid_request_exit_2() {
    for (name, manifest, needle) in [
        ("fleet_trunc.json", r#"{ "tenants": ["#, "parse"),
        ("fleet_empty.json", r#"{ "tenants": [] }"#, "at least one"),
        (
            "fleet_sla.json",
            r#"{ "tenants": [ { "pool": "box2", "database": "tpcc:2", "sla": 9.0 } ] }"#,
            "sla",
        ),
    ] {
        let path = problem_file(name, manifest);
        let out = cli().arg("fleet").arg(&path).output().expect("run dot-cli");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{name}: stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{name}: unhelpful error: {err}");
    }
    // An unknown preset inside a tenant keeps its own exit code.
    let path = problem_file(
        "fleet_preset.json",
        r#"{ "tenants": [ { "pool": "box2", "database": "oracle:12c", "sla": 0.5 } ] }"#,
    );
    let out = cli().arg("fleet").arg(&path).output().expect("run dot-cli");
    assert_eq!(out.status.code(), Some(5));
    // So does an unknown engine preset — the field is honored, not dropped.
    let path = problem_file(
        "fleet_engine.json",
        r#"{ "tenants": [
            { "pool": "box2", "database": "tpch-subset:1", "sla": 0.5, "engine": "olap" }
        ] }"#,
    );
    let out = cli().arg("fleet").arg(&path).output().expect("run dot-cli");
    assert_eq!(out.status.code(), Some(6));
}

#[test]
fn fleet_tenant_entries_honor_engine_and_refinements() {
    // The single-tenant problem-file fields keep working inside a fleet
    // manifest instead of being silently dropped.
    let path = problem_file(
        "fleet_tuned.json",
        r#"{ "tenants": [
            { "name": "tuned", "pool": "box2", "database": "tpch-subset:1", "sla": 0.5,
              "engine": "dss", "refinements": 0 }
        ] }"#,
    );
    let out = cli()
        .args(["fleet"])
        .arg(&path)
        .arg("--json")
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    let report: dot_core::fleet::FleetReport =
        serde_json::from_str(&text).expect("fleet report deserializes");
    let rec = report.tenants[0]
        .recommendation
        .as_ref()
        .expect("provisioned");
    assert_eq!(rec.provenance.refinement_rounds, 0);
    assert!(rec.validation.is_some());
}

#[test]
fn fleet_solver_flag_sets_the_default_without_overriding_manifest_entries() {
    // --solver fills in tenants whose manifest entry names no solver; an
    // explicit per-tenant "solver" field still wins.
    let path = problem_file(
        "fleet_solver_flag.json",
        r#"{ "tenants": [
            { "name": "defaulted", "pool": "box2", "database": "tpch-subset:1", "sla": 0.5 },
            { "name": "pinned", "pool": "box2", "database": "tpch-subset:1", "sla": 0.5,
              "solver": "all-premium" }
        ] }"#,
    );
    let out = cli()
        .args(["fleet"])
        .arg(&path)
        .args(["--solver", "oa", "--json"])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    let report: dot_core::fleet::FleetReport =
        serde_json::from_str(&text).expect("fleet report deserializes");
    assert_eq!(report.tenants[0].solver, "oa");
    assert_eq!(report.tenants[1].solver, "all-premium");

    // A typo'd flag fails the batch fast with the unknown-solver exit
    // code, matching `provision` — never a "successful" all-error report.
    let out = cli()
        .args(["fleet"])
        .arg(&path)
        .args(["--solver", "dto"])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("dto"), "{err}");
}

#[test]
fn fleet_per_tenant_failures_do_not_fail_the_batch() {
    // One healthy tenant plus one whose solver mismatches the workload:
    // the batch exits 0 and reports the typed per-tenant error in-band.
    let path = problem_file(
        "fleet_partial.json",
        r#"{ "tenants": [
            { "name": "ok",  "pool": "box2", "database": "tpch-subset:1", "sla": 0.5 },
            { "name": "bad", "pool": "box2", "database": "tpch-subset:1", "sla": 0.5,
              "solver": "es-additive" }
        ] }"#,
    );
    let out = cli()
        .args(["fleet"])
        .arg(&path)
        .arg("--json")
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    let report: dot_core::fleet::FleetReport =
        serde_json::from_str(&text).expect("fleet report deserializes");
    assert_eq!(report.aggregate.tenants_provisioned, 1);
    assert_eq!(report.aggregate.tenants_failed, 1);
    let bad = &report.tenants[1];
    assert!(matches!(
        bad.error,
        Some(dot_core::ProvisionError::UnsupportedWorkload { .. })
    ));
}

#[test]
fn fleet_unknown_manifest_keys_are_rejected_not_ignored() {
    // A typo'd manifest key used to be silently dropped (the vendored
    // serde derive ignores unknown fields); it must be a typed invalid
    // request naming the key, at every manifest level.
    for (name, manifest, bad_key) in [
        (
            "fleet_key_top.json",
            r#"{ "workres": 4, "tenants": [
                { "pool": "box2", "database": "tpch-subset:1", "sla": 0.5 } ] }"#,
            "workres",
        ),
        (
            "fleet_key_tenant.json",
            r#"{ "tenants": [
                { "pool": "box2", "database": "tpch-subset:1", "sla": 0.5,
                  "refinments": 2 } ] }"#,
            "refinments",
        ),
    ] {
        let path = problem_file(name, manifest);
        let out = cli().arg("fleet").arg(&path).output().expect("run dot-cli");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{name}: stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(bad_key) && err.contains("unknown key"),
            "{name}: error must name the key: {err}"
        );
    }
    // Problem files behave the same way.
    let err = provision_fails(
        "problem_key.json",
        r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 0.5, "solvr": "dot" }"#,
        &[],
        2,
    );
    assert!(
        err.contains("solvr") && err.contains("unknown key"),
        "{err}"
    );
}

const LOOSE_OLTP_PROBLEM: &str = r#"{ "pool": "box2", "database": "tpcc:2", "sla": 0.05 }"#;

/// Provision `problem`, write the JSON recommendation next to it, and
/// return the recommendation file's path (the `--current` input).
fn provisioned_layout(name: &str, problem: &str) -> PathBuf {
    let problem_path = problem_file(name, problem);
    let out = cli()
        .arg("provision")
        .arg(&problem_path)
        .arg("--json")
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    let layout_path = problem_file(&format!("{name}.layout.json"), &text);
    layout_path
}

#[test]
fn replan_unchanged_workload_says_so() {
    let current = provisioned_layout("replan_same.json", DSS_PROBLEM);
    let problem = problem_file("replan_same2.json", DSS_PROBLEM);
    let out = cli()
        .arg("replan")
        .arg(&problem)
        .args(["--current", current.to_str().unwrap()])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    assert!(
        text.contains("unchanged"),
        "no unchanged verdict in:\n{text}"
    );
}

#[test]
fn replan_drifted_problem_emits_a_migration_plan() {
    // Deploy the loose-SLA (cheap) layout, then drift to the tight SLA:
    // the deployed layout violates the drifted floor and must migrate.
    let current = provisioned_layout("replan_loose.json", LOOSE_OLTP_PROBLEM);
    let drifted = problem_file("replan_tight.json", OLTP_PROBLEM);
    let out = cli()
        .arg("replan")
        .arg(&drifted)
        .args(["--current", current.to_str().unwrap()])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    for expected in ["verdict: migrate", "migration:", "break-even"] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }

    // --json emits the ReplanEnvelope: the serializable recommendation
    // wrapped with the ControlEvent-compatible provenance the supervise
    // subcommand also stamps (elapsed_ms + trigger reason; the one-shot
    // CLI path is the "Manual" stub).
    let out = cli()
        .arg("replan")
        .arg(&drifted)
        .args(["--current", current.to_str().unwrap(), "--json"])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    let envelope: dot_core::controller::ReplanEnvelope =
        serde_json::from_str(&text).expect("replan envelope deserializes");
    assert_eq!(
        envelope.provenance.trigger,
        dot_core::controller::TriggerReason::Manual
    );
    assert!(text.contains("\"elapsed_ms\""), "provenance must serialize");
    let rec = envelope.replan;
    assert!(!rec.plan.steps.is_empty());
    assert!(!rec.current_feasible);
    assert!(rec.plan.break_even_hours > 0.0 && rec.plan.break_even_hours.is_finite());
    assert_eq!(rec.plan.final_layout, rec.target.layout);
    // The graded validation margins ride along in the target's report.
    let validation = rec.target.validation.expect("dot validates");
    assert!(!validation.margins.is_empty(), "margins must serialize");

    // A zero byte budget is the identity plan.
    let out = cli()
        .arg("replan")
        .arg(&drifted)
        .args([
            "--current",
            current.to_str().unwrap(),
            "--budget-bytes",
            "0",
        ])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    assert!(
        text.contains("verdict: stay"),
        "no stay verdict in:\n{text}"
    );
}

#[test]
fn replan_usage_and_malformed_inputs_fail_with_typed_codes() {
    // Missing --current is a usage error.
    let problem = problem_file("replan_usage.json", OLTP_PROBLEM);
    let out = cli()
        .arg("replan")
        .arg(&problem)
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1));

    // A layout file that is neither a Layout nor a Recommendation is an
    // invalid request (exit 2) naming the file.
    let bogus = problem_file("replan_bogus_layout.json", r#"{ "not": "a layout" }"#);
    let out = cli()
        .arg("replan")
        .arg(&problem)
        .args(["--current", bogus.to_str().unwrap()])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("replan_bogus_layout"), "{err}");

    // A non-numeric budget is a usage error before any work happens.
    let current = provisioned_layout("replan_budget_usage.json", OLTP_PROBLEM);
    let out = cli()
        .arg("replan")
        .arg(&problem)
        .args([
            "--current",
            current.to_str().unwrap(),
            "--budget-cents",
            "lots",
        ])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1));

    // A typo'd flag is a usage error naming it — never silently ignored
    // (a dropped --budget-byte would otherwise run an unbudgeted plan).
    let out = cli()
        .arg("replan")
        .arg(&problem)
        .args([
            "--current",
            current.to_str().unwrap(),
            "--budget-byte",
            "100",
        ])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--budget-byte") && err.contains("unknown flag"),
        "{err}"
    );

    // Flags are scoped per subcommand: a real flag on the wrong
    // subcommand is rejected too, never silently dropped.
    let out = cli()
        .arg("provision")
        .arg(&problem)
        .args(["--drift-threshold", "0.3"])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--drift-threshold") && err.contains("subcommand"),
        "{err}"
    );
}

#[test]
fn replan_hostile_current_layouts_fail_typed_not_panic() {
    // The replan path used to panic (debug) or misplan (release) on
    // user-supplied layouts that do not fit the problem; both shapes must
    // be typed invalid requests (exit 2) that name what is wrong.
    let problem = problem_file("replan_hostile.json", OLTP_PROBLEM);

    // Too few objects for the schema.
    let short = problem_file("replan_short_layout.json", r#"{ "assignment": [0, 1] }"#);
    let out = cli()
        .arg("replan")
        .arg(&problem)
        .args(["--current", short.to_str().unwrap()])
        .output()
        .expect("run dot-cli");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("objects"),
        "must name the size mismatch: {err}"
    );

    // Right object count, but a class id the pool does not have.
    let n = dot_workloads::tpcc::schema(2.0).object_count();
    let foreign = problem_file(
        "replan_foreign_class.json",
        &format!(
            r#"{{ "assignment": [{}] }}"#,
            std::iter::repeat("99")
                .take(n)
                .collect::<Vec<_>>()
                .join(", ")
        ),
    );
    let out = cli()
        .arg("replan")
        .arg(&problem)
        .args(["--current", foreign.to_str().unwrap()])
        .output()
        .expect("run dot-cli");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("classes"),
        "must name the foreign class: {err}"
    );
}

#[test]
fn replan_inflight_sla_is_honored_or_rejected_typed() {
    let current = provisioned_layout("replan_sla_loose.json", LOOSE_OLTP_PROBLEM);
    let drifted = problem_file("replan_sla_tight.json", OLTP_PROBLEM);

    // A ratio outside (0, 1] is an invalid request before any planning.
    let out = cli()
        .arg("replan")
        .arg(&drifted)
        .args([
            "--current",
            current.to_str().unwrap(),
            "--sla-during-migration",
            "1.5",
        ])
        .output()
        .expect("run dot-cli");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The deployed loose layout already violates the drifted SLA, so no
    // wave can keep a high in-flight ratio: a typed infeasibility (exit
    // 7), carrying the suggested workable ratio.
    let out = cli()
        .arg("replan")
        .arg(&drifted)
        .args([
            "--current",
            current.to_str().unwrap(),
            "--sla-during-migration",
            "0.9",
        ])
        .output()
        .expect("run dot-cli");
    assert_eq!(
        out.status.code(),
        Some(7),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("infeasible"), "{err}");

    // A non-numeric ratio is a usage error.
    let out = cli()
        .arg("replan")
        .arg(&drifted)
        .args([
            "--current",
            current.to_str().unwrap(),
            "--sla-during-migration",
            "plenty",
        ])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn replan_window_seconds_reports_a_windowed_rollout() {
    let current = provisioned_layout("replan_win_loose.json", LOOSE_OLTP_PROBLEM);
    let drifted = problem_file("replan_win_tight.json", OLTP_PROBLEM);
    let out = cli()
        .arg("replan")
        .arg(&drifted)
        .args([
            "--current",
            current.to_str().unwrap(),
            "--window-seconds",
            "6",
        ])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    for expected in [
        "windowed rollout",
        "window 0:",
        "wave(s)",
        "rollout reaches the target",
    ] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }

    // --json emits the provenance-stamped rollout, structurally parseable.
    #[derive(serde::Deserialize)]
    struct Envelope {
        provenance: dot_core::controller::ControlProvenance,
        rollout: dot_core::replan::WindowedRollout,
    }
    let out = cli()
        .arg("replan")
        .arg(&drifted)
        .args([
            "--current",
            current.to_str().unwrap(),
            "--window-seconds",
            "6",
            "--json",
        ])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    let envelope: Envelope = serde_json::from_str(&text).expect("rollout envelope deserializes");
    assert_eq!(
        envelope.provenance.trigger,
        dot_core::controller::TriggerReason::Manual
    );
    let rollout = envelope.rollout;
    assert!(rollout.complete, "the rollout must reach the target");
    assert!(
        rollout.windows.len() >= 2,
        "6 s windows must split the flip"
    );
    for rec in &rollout.windows {
        assert!(
            rec.plan.schedule.makespan_seconds <= 6.0 + 1e-6,
            "window overran its ceiling: {}",
            rec.plan.schedule.makespan_seconds
        );
    }

    // A non-positive window is a usage error.
    let out = cli()
        .arg("replan")
        .arg(&drifted)
        .args([
            "--current",
            current.to_str().unwrap(),
            "--window-seconds",
            "0",
        ])
        .output()
        .expect("run dot-cli");
    assert!(!out.status.success());
}

const SUPERVISE_TRACE: &str = r#"[
    { "shift": 0.03 },
    { "phase": "analytical", "repeat": 2 },
    { "phase": "baseline" }
]"#;

#[test]
fn supervise_replays_a_trace_and_reports_the_event_log() {
    let problem = problem_file("supervise.json", OLTP_PROBLEM);
    let trace = problem_file("supervise_trace.json", SUPERVISE_TRACE);
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", trace.to_str().unwrap()])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    for expected in [
        "supervising",
        "observed",
        "TRIGGERED",
        "APPLIED",
        "trigger(s)",
    ] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }
}

#[test]
fn supervise_window_ticks_continues_a_budget_cut_rollout() {
    // A byte budget cuts the flip short at tick 0; the recurring
    // maintenance window picks the rollout back up without a new drift
    // signal.
    let problem = problem_file("supervise_window.json", OLTP_PROBLEM);
    let trace = problem_file(
        "supervise_window_trace.json",
        r#"[ { "phase": "analytical", "repeat": 6 } ]"#,
    );
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args([
            "--trace",
            trace.to_str().unwrap(),
            "--cooldown",
            "1",
            "--window-ticks",
            "2",
            "--budget-bytes",
            "60000000",
        ])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    for expected in ["partial", "deferred", "maintenance window (every 2 ticks)"] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }

    // A zero window is a typed config error, not a silent no-op.
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", trace.to_str().unwrap(), "--window-ticks", "0"])
        .output()
        .expect("run dot-cli");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("window_ticks"), "{err}");
}

#[test]
fn supervise_json_shares_the_control_provenance_schema() {
    let problem = problem_file("supervise_json.json", OLTP_PROBLEM);
    let trace = problem_file("supervise_json_trace.json", SUPERVISE_TRACE);
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", trace.to_str().unwrap(), "--json"])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    let report: dot_core::fleet::SuperviseFleetReport =
        serde_json::from_str(&text).expect("supervise report deserializes");
    assert_eq!(report.tenants.len(), 1);
    let tenant = &report.tenants[0];
    assert!(tenant.error.is_none());
    assert_eq!(tenant.ticks, 4);
    assert!(tenant.triggers >= 1, "the phase flip must trigger");
    assert!(tenant.applications >= 1);
    // The provenance object is the same schema replan --json stamps, with
    // the loop's actual trigger in place of the Manual stub.
    assert!(matches!(
        tenant.provenance.trigger,
        dot_core::controller::TriggerReason::Drift { .. }
            | dot_core::controller::TriggerReason::DriftAndSla { .. }
    ));
    assert!(text.contains("\"elapsed_ms\""), "provenance must serialize");
}

#[test]
fn supervise_stream_emits_daemon_protocol_frames() {
    // `--stream` speaks the `dot-serve` wire protocol: one `Event` frame
    // per control event as each tick completes, then a terminal
    // `Detached` frame with the tenant summary — so a script written
    // against the daemon parses the one-shot CLI stream unchanged.
    let problem = problem_file("supervise_stream.json", OLTP_PROBLEM);
    let trace = problem_file("supervise_stream_trace.json", SUPERVISE_TRACE);
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", trace.to_str().unwrap(), "--stream"])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    let frames: Vec<dot_serve::protocol::ResponseFrame> = text
        .lines()
        .map(|line| dot_serve::framing::parse_response(line).expect("protocol frame"))
        .collect();
    assert!(frames.len() > 1, "stream must carry events:\n{text}");
    let (last, events) = frames.split_last().unwrap();
    let mut observed = 0;
    for frame in events {
        match &frame.response {
            dot_serve::protocol::Response::Event { tenant: 0, event } => {
                if matches!(event, dot_core::controller::ControlEvent::Observed { .. }) {
                    observed += 1;
                }
            }
            other => panic!("expected an Event frame, got {other:?}"),
        }
    }
    // The trace is 4 ticks; every tick logs its observation.
    assert_eq!(observed, 4, "{text}");
    match &last.response {
        dot_serve::protocol::Response::Detached { summary } => {
            assert_eq!(summary.ticks, 4);
            assert!(summary.triggers >= 1, "the phase flip must trigger");
            assert!(summary.applications >= 1);
        }
        other => panic!("expected the terminal Detached frame, got {other:?}"),
    }

    // The two output modes are exclusive: asking for both is a usage
    // error before any work happens.
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", trace.to_str().unwrap(), "--json", "--stream"])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mutually exclusive"), "{err}");
}

#[test]
fn supervise_usage_and_malformed_traces_fail_with_typed_codes() {
    // Missing --trace is a usage error.
    let problem = problem_file("supervise_usage.json", OLTP_PROBLEM);
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1));

    // A typo'd trace-step key is an invalid request naming it.
    let bad = problem_file("supervise_bad_trace.json", r#"[ { "shfit": 0.3 } ]"#);
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", bad.to_str().unwrap()])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("shfit") && err.contains("unknown key"),
        "{err}"
    );

    // An out-of-domain step is a typed invalid request, not a panic.
    let out_of_domain = problem_file("supervise_domain_trace.json", r#"[ { "shift": 1.5 } ]"#);
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", out_of_domain.to_str().unwrap()])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("shift"), "{err}");

    // An empty trace is rejected before any work happens.
    let empty = problem_file("supervise_empty_trace.json", "[]");
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", empty.to_str().unwrap()])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(2));

    // An unknown phase surfaces as the tenant's typed error with exit 2.
    let lunar = problem_file("supervise_lunar_trace.json", r#"[ { "phase": "lunar" } ]"#);
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", lunar.to_str().unwrap()])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(2));

    // In --json mode the failure's stdout is ONE valid JSON value — the
    // typed error document, never the report with an error appended.
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", lunar.to_str().unwrap(), "--json"])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout);
    let value: serde::Value = serde_json::from_str(&text).expect("single JSON document");
    assert!(
        value
            .as_object()
            .expect("tagged error object")
            .iter()
            .any(|(k, _)| k == "InvalidRequest"),
        "{text}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("lunar"), "{err}");
}

#[test]
fn supervise_trace_gen_generates_and_replays_a_trace() {
    // `--trace-gen` swaps the trace file for a generator spec; a flash
    // crowd spikes demand hard enough to trigger at least one replan.
    let problem = problem_file("supervise_gen.json", OLTP_PROBLEM);
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace-gen", "flash-crowd:peak=4,quiet=1,spike=2,decay=2"])
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    for expected in ["supervising", "observed", "trigger(s)"] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }

    // The two trace sources are exclusive: naming both is a usage error.
    let trace = problem_file("supervise_gen_trace.json", SUPERVISE_TRACE);
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace", trace.to_str().unwrap()])
        .args(["--trace-gen", "diurnal"])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mutually exclusive"), "{err}");

    // A malformed spec is a typed invalid request naming the generator.
    let out = cli()
        .arg("supervise")
        .arg(&problem)
        .args(["--trace-gen", "lunar:phase=full"])
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("lunar"), "{err}");
}

#[test]
fn explain_prints_plans_for_the_premium_layout() {
    let path = problem_file("explain.json", DSS_PROBLEM);
    let out = cli()
        .arg("explain")
        .arg(&path)
        .output()
        .expect("run dot-cli");
    let text = stdout_of(&out);
    assert!(text.contains("workload:"), "no workload header in:\n{text}");
}

#[test]
fn bad_usage_fails_with_the_generic_code() {
    let out = cli().output().expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1), "no-arg run must fail with 1");

    let out = cli().arg("frobnicate").output().expect("run dot-cli");
    assert_eq!(out.status.code(), Some(1), "unknown subcommand");
}

// One malformed-input probe per ProvisionError variant the CLI can hit,
// each with its own exit code and a message naming the offending input.

#[test]
fn out_of_range_sla_is_invalid_request_exit_2() {
    let err = provision_fails(
        "bad_sla.json",
        r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 7.0 }"#,
        &[],
        2,
    );
    assert!(err.contains("sla"), "unhelpful error: {err}");
}

#[test]
fn unparsable_problem_file_is_invalid_request_exit_2() {
    let err = provision_fails("truncated.json", r#"{ "pool": "box2", "#, &[], 2);
    assert!(err.contains("parse"), "unhelpful error: {err}");
}

#[test]
fn unknown_solver_is_exit_3_and_lists_known_ids() {
    let err = provision_fails("solver.json", DSS_PROBLEM, &["--solver", "simplex"], 3);
    assert!(err.contains("simplex") && err.contains("dot"), "{err}");
}

#[test]
fn unknown_pool_is_exit_4() {
    let err = provision_fails(
        "bad_pool.json",
        r#"{ "pool": "box9", "database": "tpch-subset:1", "sla": 0.5 }"#,
        &[],
        4,
    );
    assert!(err.contains("box9"), "{err}");
}

#[test]
fn unknown_database_preset_is_exit_5() {
    let err = provision_fails(
        "bad_preset.json",
        r#"{ "pool": "box2", "database": "tpch:1:bogus", "sla": 0.5 }"#,
        &[],
        5,
    );
    assert!(err.contains("tpch:1:bogus"), "{err}");
}

#[test]
fn unknown_engine_preset_is_exit_6() {
    let err = provision_fails(
        "bad_engine.json",
        r#"{ "pool": "box2", "database": "tpch-subset:1", "sla": 0.5, "engine": "olap" }"#,
        &[],
        6,
    );
    assert!(err.contains("olap") && err.contains("dss"), "{err}");
}

#[test]
fn infeasible_sla_is_exit_7_with_a_suggestion() {
    // Ratio 1.0 forbids any degradation; the TPC-H subset workload cannot
    // move a byte off the premium class without slowing some query, and
    // the premium class itself is capped via an inline pool. Easier: a
    // custom pool is overkill — the ycsb:A update-heavy mix at ratio 1.0
    // keeps everything premium, which IS feasible. So probe with tpcc at a
    // ratio above what any off-premium layout can meet but with the H-SSD
    // capped so the premium layout is out too.
    let err = provision_fails(
        "infeasible.json",
        r#"{ "pool": { "name": "Tiny", "classes": [
                { "id": 0, "name": "H-SSD", "devices": [],
                  "controller_cents": 0.0, "controller_watts": 0.0,
                  "capacity_gb": 0.8, "price_cents_per_gb_hour": 0.169,
                  "profile": { "at_c1": [0.013, 0.013, 0.015, 0.015],
                               "at_c300": [0.013, 0.013, 0.015, 0.015] } },
                { "id": 1, "name": "HDD", "devices": [],
                  "controller_cents": 0.0, "controller_watts": 0.0,
                  "capacity_gb": 1000.0, "price_cents_per_gb_hour": 0.000347,
                  "profile": { "at_c1": [0.005, 6.0, 0.006, 8.0],
                               "at_c300": [0.037, 2.4, 0.035, 3.6] } }
            ] },
            "database": "tpch-subset:1", "sla": 1.0 }"#,
        &[],
        7,
    );
    assert!(err.contains("infeasible"), "{err}");
}

#[test]
fn oversized_database_is_capacity_exceeded_exit_8() {
    let err = provision_fails(
        "capacity.json",
        r#"{ "pool": { "name": "Thimble", "classes": [
                { "id": 0, "name": "H-SSD", "devices": [],
                  "controller_cents": 0.0, "controller_watts": 0.0,
                  "capacity_gb": 0.01, "price_cents_per_gb_hour": 0.169,
                  "profile": { "at_c1": [0.013, 0.013, 0.015, 0.015],
                               "at_c300": [0.013, 0.013, 0.015, 0.015] } }
            ] },
            "database": "tpch-subset:1", "sla": 0.5 }"#,
        &[],
        8,
    );
    assert!(err.contains("capacity"), "{err}");
}

#[test]
fn solver_workload_mismatch_is_unsupported_exit_9() {
    let err = provision_fails(
        "mismatch.json",
        DSS_PROBLEM,
        &["--solver", "es-additive"],
        9,
    );
    assert!(err.contains("es-additive"), "{err}");
}

#[test]
fn json_flag_renders_the_typed_error_too() {
    let path = problem_file(
        "json_err.json",
        r#"{ "pool": "box9", "database": "tpch-subset:1", "sla": 0.5 }"#,
    );
    let out = cli()
        .arg("provision")
        .arg(&path)
        .arg("--json")
        .output()
        .expect("run dot-cli");
    assert_eq!(out.status.code(), Some(4));
    let text = String::from_utf8_lossy(&out.stdout);
    let value: serde::Value = serde_json::from_str(&text).expect("error serializes as JSON");
    let object = value.as_object().expect("tagged error object");
    assert!(object.iter().any(|(k, _)| k == "UnknownPool"), "{text}");
}
