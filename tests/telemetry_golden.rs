//! Golden trajectories for the measured-telemetry pipeline.
//!
//! Two guarantees pinned here:
//!
//! 1. **The telemetry seam is invisible for scripted observations** —
//!    replaying each committed scenario through a
//!    [`dot_workloads::telemetry::ScriptedSource`] (instead of
//!    `run_trace`) reproduces its committed golden log bit for bit.
//! 2. **A measured drift-triggered migration is itself pinned** — a
//!    [`dot_workloads::telemetry::MeasuredSource`] streams simulated test
//!    runs of a transactional→analytical flip into the controller, the
//!    measured signature crosses the threshold, a migration applies, and
//!    the whole event log matches `tests/golden/measured_flip.json` under
//!    cache off / cold / warm.
//!
//! To regenerate after an intentional behaviour change:
//! `UPDATE_GOLDEN=1 cargo test --test telemetry_golden`.

mod scenario;

use dot_core::advisor::Advisor;
use dot_core::controller::{expand_trace, ControlEvent, Controller};
use dot_core::toc::CachedEstimator;
use dot_dbms::Layout;
use dot_storage::catalog;
use dot_workloads::telemetry::{MeasuredSource, ScriptedSource};
use dot_workloads::{drift, tpcc, Workload};
use scenario::scenarios;
use std::path::PathBuf;
use std::sync::Arc;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

#[test]
fn scripted_source_reproduces_every_committed_golden_log() {
    let schema = tpcc::schema(2.0);
    let pool = catalog::box2();
    let baseline = tpcc::workload(&schema);
    let deployed = Advisor::builder(&schema, &pool, &baseline)
        .sla(0.5)
        .build()
        .expect("baseline session")
        .recommend("dot")
        .expect("baseline layout")
        .layout;
    for s in scenarios() {
        let committed = std::fs::read_to_string(golden_path(s.name))
            .unwrap_or_else(|e| panic!("{}: no golden log ({e})", s.name));
        let expected: Vec<ControlEvent> =
            serde_json::from_str(&committed).expect("golden log parses structurally");
        let trace = expand_trace(&schema, &baseline, &s.steps).expect("script expands");
        let mut controller = Controller::new(
            &schema,
            &pool,
            &baseline,
            deployed.clone(),
            0.5,
            scenario::config(),
        )
        .expect("controller opens");
        let mut source = ScriptedSource::new(trace);
        controller.run_source(&mut source).expect("source drains");
        assert_eq!(
            controller.events(),
            expected,
            "{}: a ScriptedSource replay must be bit-identical to the \
             committed run_trace golden log",
            s.name
        );
    }
}

/// The measured trajectory: four transactional ticks, then the analytical
/// reporting phase arrives and holds — observed through simulated test
/// runs, not declared weights.
fn measured_sequence(schema: &dot_dbms::Schema) -> Vec<Workload> {
    let baseline = tpcc::workload(schema);
    let analytical = drift::analytical_phase(schema);
    vec![
        baseline.clone(),
        baseline.clone(),
        baseline,
        analytical.clone(),
        analytical.clone(),
        analytical,
    ]
}

fn replay_measured(cache: Option<&Arc<CachedEstimator>>) -> (Vec<ControlEvent>, Layout) {
    let schema = tpcc::schema(2.0);
    let pool = catalog::box2();
    let baseline = tpcc::workload(&schema);
    let deployed = Advisor::builder(&schema, &pool, &baseline)
        .sla(0.5)
        .build()
        .expect("baseline session")
        .recommend("dot")
        .expect("baseline layout")
        .layout;
    let mut source = MeasuredSource::new(&schema, &pool, measured_sequence(&schema), 42);
    // Anchor the controller on the measured baseline (same seed as the
    // first tick), so the session starts quiet instead of scoring the
    // declared-vs-measured weighting gap as drift.
    let measured_baseline = source.measure(&baseline, &deployed, 42).signature();
    let mut controller =
        Controller::new(&schema, &pool, &baseline, deployed, 0.5, scenario::config())
            .expect("controller opens")
            .with_baseline_signature(measured_baseline);
    if let Some(cache) = cache {
        controller = controller.with_toc_cache(Arc::clone(cache));
    }
    controller.run_source(&mut source).expect("source drains");
    (controller.events().to_vec(), controller.deployed().clone())
}

#[test]
fn measured_phase_flip_migrates_and_matches_the_golden_log() {
    let (off, off_layout) = replay_measured(None);
    let (cold, _) = replay_measured(Some(&Arc::new(CachedEstimator::new())));
    let warm_cache = Arc::new(CachedEstimator::new());
    let _ = replay_measured(Some(&warm_cache));
    assert!(
        warm_cache.stats().entries > 0,
        "warm-up must fill the cache"
    );
    let (warm, _) = replay_measured(Some(&warm_cache));
    assert_eq!(off, cold, "cache-off and cache-cold logs differ");
    assert_eq!(off, warm, "cache-off and cache-warm logs differ");

    // The measured flip must actually migrate: the analytical phase's
    // measured signature crosses the threshold and a plan applies.
    assert!(
        off.iter()
            .any(|e| matches!(e, ControlEvent::Triggered { .. })),
        "the measured phase flip must trigger"
    );
    assert!(
        off.iter()
            .any(|e| matches!(e, ControlEvent::Applied { .. })),
        "the measured phase flip must migrate"
    );
    let schema = tpcc::schema(2.0);
    let pool = catalog::box2();
    let baseline = tpcc::workload(&schema);
    let start = Advisor::builder(&schema, &pool, &baseline)
        .sla(0.5)
        .build()
        .expect("baseline session")
        .recommend("dot")
        .expect("baseline layout")
        .layout;
    assert_ne!(off_layout, start, "the deployed layout must move");

    let path = golden_path("measured_flip");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let json = serde_json::to_string_pretty(&off).expect("log serializes");
        std::fs::write(&path, json + "\n").expect("write golden file");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "no golden log at {} ({e}); run UPDATE_GOLDEN=1 cargo test \
             --test telemetry_golden to create it",
            path.display()
        )
    });
    let expected: Vec<ControlEvent> =
        serde_json::from_str(&committed).expect("golden log parses structurally");
    assert_eq!(
        off, expected,
        "the measured-telemetry event log drifted from the committed \
         golden log; if the change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test telemetry_golden"
    );
}
