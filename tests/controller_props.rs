//! Property-based tests over the online re-provisioning controller: for
//! randomly generated noise amplitudes, drift ramps, and cool-down
//! windows,
//!
//! * **no-flap** — noise strictly below the drift threshold never
//!   triggers (256 cases: the hysteresis/threshold machinery cannot be
//!   provoked by sub-threshold observations);
//! * **monotone drift** ramping past the threshold *eventually* triggers,
//!   and never before the signal actually crosses;
//! * the **cool-down bounds the trigger frequency** exactly: with every
//!   tick over threshold, triggers land every `cooldown` ticks and
//!   nowhere else;
//! * a triggered plan on an **unchanged workload is always the
//!   identity** — the deployed layout never moves and every verdict is
//!   `Unchanged`.

use dot_core::advisor::Advisor;
use dot_core::controller::{ControlEvent, Controller, ControllerConfig};
use dot_core::replan::MigrationDecision;
use dot_dbms::query::{Op, QuerySpec, ReadOp, Rel, ScanSpec, UpdateOp};
use dot_dbms::{Schema, SchemaBuilder};
use dot_storage::catalog;
use dot_workloads::{drift, Workload};
use proptest::prelude::*;

/// One small table with a primary index: enough structure for plans to
/// react to placement while keeping 256-case suites fast.
fn tiny_schema() -> Schema {
    SchemaBuilder::new("ctl-prop")
        .table("t0", 400_000.0, 120.0)
        .primary_index(8.0)
        .build()
}

/// A mixed read/write workload, so read/write shifts move the signature.
fn mixed_workload(schema: &Schema) -> Workload {
    let table = schema.tables()[0].id;
    let pk = schema.primary_index_of(table).expect("pk").id;
    Workload::dss(
        "ctl-prop",
        vec![
            QuerySpec::read("scan", ReadOp::of(Rel::Scan(ScanSpec::full(table)))),
            QuerySpec::read(
                "probe",
                ReadOp::of(Rel::Scan(ScanSpec::indexed(table, 0.001, pk))),
            ),
            QuerySpec::transaction(
                "upd",
                vec![Op::Update(UpdateOp {
                    table,
                    rows: 150.0,
                    via: Some(pk),
                    updates_indexed_key: false,
                })],
            ),
        ],
    )
}

/// A deployed layout the baseline recommends, plus its controller.
fn controller_for(
    schema: &Schema,
    pool: &dot_storage::StoragePool,
    baseline: &Workload,
    config: ControllerConfig,
) -> Controller {
    let deployed = Advisor::builder(schema, pool, baseline)
        .sla(0.25)
        .build()
        .expect("baseline session")
        .recommend("dot")
        .expect("baseline layout")
        .layout;
    Controller::new(schema, pool, baseline, deployed, 0.25, config).expect("controller opens")
}

fn triggered_ticks(events: &[ControlEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|e| match e {
            ControlEvent::Triggered { tick, .. } => Some(*tick),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No-flap: observations whose drift distance stays strictly below the
    /// threshold never trigger, defer, or move the deployed layout —
    /// whatever the noise sequence.
    #[test]
    fn noise_below_threshold_never_triggers(
        amps in proptest::collection::vec(-0.45..0.45f64, 1..8),
    ) {
        let schema = tiny_schema();
        let pool = catalog::box2();
        let baseline = mixed_workload(&schema);
        let observations: Vec<Workload> = amps
            .iter()
            .map(|&a| drift::shift_read_write(&baseline, a))
            .collect();
        // The threshold sits strictly above the worst observation, so
        // every tick is sub-threshold by construction; SLA pressure is
        // taken off the table with an unreachable grace.
        let worst = observations
            .iter()
            .map(|w| drift::profile_distance(&baseline, w))
            .fold(0.0, f64::max);
        let config = ControllerConfig {
            drift_threshold: (worst + 0.05).min(1.0).max(worst * 1.001 + 1e-9),
            sla_grace: 1e9,
            cooldown_ticks: 0,
            ..ControllerConfig::default()
        };
        let mut controller = controller_for(&schema, &pool, &baseline, config);
        let before = controller.deployed().clone();
        let outcomes = controller.run_trace(&observations).expect("trace runs");
        for outcome in &outcomes {
            prop_assert!(!outcome.triggered());
            prop_assert_eq!(outcome.events.len(), 1, "quiet ticks only observe");
            prop_assert!(matches!(outcome.events[0], ControlEvent::Observed { .. }));
        }
        prop_assert_eq!(controller.deployed(), &before);
        prop_assert_eq!(triggered_ticks(controller.events()).len(), 0);
    }
}

proptest! {
    /// Monotone drift eventually triggers — and never before the distance
    /// actually crosses the threshold.
    #[test]
    fn monotone_drift_eventually_triggers(
        toward_writes in proptest::bool::ANY,
        ramp in 0.05..0.09f64,
    ) {
        let schema = tiny_schema();
        let pool = catalog::box2();
        let baseline = mixed_workload(&schema);
        let sign = if toward_writes { 1.0 } else { -1.0 };
        let shifts: Vec<f64> = (1..=10).map(|k| sign * ramp * k as f64).collect();
        let observations: Vec<Workload> = shifts
            .iter()
            .map(|&s| drift::shift_read_write(&baseline, s))
            .collect();
        let final_distance =
            drift::profile_distance(&baseline, observations.last().expect("non-empty"));
        prop_assert!(final_distance > 0.0, "the ramp must move the signature");
        let config = ControllerConfig {
            drift_threshold: final_distance * 0.6,
            sla_grace: 1e9,
            cooldown_ticks: 0,
            ..ControllerConfig::default()
        };
        let threshold = config.drift_threshold;
        let mut controller = controller_for(&schema, &pool, &baseline, config);
        let outcomes = controller.run_trace(&observations).expect("trace runs");
        let first_trigger = outcomes.iter().position(|o| o.triggered());
        prop_assert!(first_trigger.is_some(), "monotone drift must trigger");
        for outcome in &outcomes[..first_trigger.expect("checked")] {
            let ControlEvent::Observed { distance, .. } = outcome.events[0] else {
                panic!("first event of a tick is Observed");
            };
            prop_assert!(
                distance < threshold,
                "tick {} did not trigger at distance {} >= threshold {}",
                outcome.tick, distance, threshold
            );
        }
    }

    /// The cool-down bounds the trigger frequency exactly: with every tick
    /// over threshold and nothing ever latching (the plan on an unchanged
    /// workload is `Unchanged`), triggers land at ticks 0, c, 2c, ...
    #[test]
    fn cooldown_bounds_trigger_frequency(
        cooldown in 1usize..5,
        ticks in 4usize..12,
    ) {
        let schema = tiny_schema();
        let pool = catalog::box2();
        let baseline = mixed_workload(&schema);
        let config = ControllerConfig {
            drift_threshold: 0.0, // every observation is over threshold
            cooldown_ticks: cooldown as u64,
            ..ControllerConfig::default()
        };
        let mut controller = controller_for(&schema, &pool, &baseline, config);
        let trace = vec![baseline.clone(); ticks];
        controller.run_trace(&trace).expect("trace runs");
        let triggers = triggered_ticks(controller.events());
        let expected: Vec<u64> = (0..ticks as u64).step_by(cooldown).collect();
        prop_assert_eq!(
            triggers, expected,
            "cooldown {} over {} ticks", cooldown, ticks
        );
    }

    /// A triggered plan on an unchanged workload is always the identity:
    /// every verdict is `Unchanged`, no plan has steps, and the deployed
    /// layout never moves.
    #[test]
    fn unchanged_workload_replans_to_the_identity(
        ticks in 1usize..6,
    ) {
        let schema = tiny_schema();
        let pool = catalog::box2();
        let baseline = mixed_workload(&schema);
        let config = ControllerConfig {
            drift_threshold: 0.0,
            cooldown_ticks: 0, // trigger on every tick
            ..ControllerConfig::default()
        };
        let mut controller = controller_for(&schema, &pool, &baseline, config);
        let before = controller.deployed().clone();
        let trace = vec![baseline.clone(); ticks];
        let outcomes = controller.run_trace(&trace).expect("trace runs");
        for outcome in &outcomes {
            prop_assert!(outcome.triggered(), "threshold 0 triggers every tick");
            let rec = outcome.replan.as_ref().expect("triggered ticks replan");
            prop_assert_eq!(&rec.plan.decision, &MigrationDecision::Unchanged);
            prop_assert!(rec.plan.steps.is_empty());
            prop_assert_eq!(rec.plan.break_even_hours, 0.0);
            prop_assert!(!outcome
                .events
                .iter()
                .any(|e| matches!(e, ControlEvent::Applied { .. })));
        }
        prop_assert_eq!(controller.deployed(), &before);
    }
}
