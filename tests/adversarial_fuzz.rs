//! Adversarial fuzzing of the online re-provisioning controller: search
//! hostile drift traces — oscillation at the hysteresis boundary, ramps
//! creeping under the threshold, pressure spikes inside the cool-down
//! window — for contract violations (flapping, missed triggers,
//! budget-violating replans, misattributed defers).
//!
//! Every case replays a generated trace and checks the full event log
//! against an independent re-implementation of the anti-flap contract
//! (`tests/adversarial/mod.rs`). A failing case is shrunk to a minimal
//! trace and written to `tests/golden/adversarial/found-<name>.json`; the
//! panic message names the file so it can be committed as a regression
//! (replayed forever by `adversarial_regressions`).
//!
//! Case count: `ADVERSARIAL_CASES` env override; otherwise 64 under
//! `cfg(debug_assertions)` and 256 in release — CI runs both tiers.

mod adversarial;

use adversarial::{generate_case, run_case, shrink, verdict_of, violation_of, RegressionCase};

fn case_count() -> u64 {
    if let Ok(cases) = std::env::var("ADVERSARIAL_CASES") {
        return cases
            .parse()
            .expect("ADVERSARIAL_CASES must be a case count");
    }
    if cfg!(debug_assertions) {
        64
    } else {
        256
    }
}

#[test]
fn hostile_traces_cannot_break_the_anti_flap_contract() {
    let mut checked = 0u64;
    for case_index in 0..case_count() {
        let case = generate_case(case_index);
        if let Some(violation) = violation_of(&case) {
            let minimal = shrink(&case);
            let violation = violation_of(&minimal).unwrap_or(violation);
            let record = RegressionCase {
                verdict: run_case(&minimal)
                    .as_deref()
                    .map(verdict_of)
                    .unwrap_or_else(|_| verdict_of(&[])),
                case: minimal.clone(),
            };
            let dir = adversarial::regression_dir();
            std::fs::create_dir_all(&dir).expect("create regression dir");
            let path = dir.join(format!("found-{}.json", minimal.name));
            let json = serde_json::to_string_pretty(&record).expect("case serializes");
            std::fs::write(&path, json + "\n").expect("write regression case");
            panic!(
                "case {case_index} ({}): {violation}\nminimal trace written to {} — \
                 fix the controller, then commit the file so the case replays forever",
                minimal.name,
                path.display()
            );
        }
        checked += 1;
    }
    assert_eq!(checked, case_count());
}

#[test]
fn hostile_replays_are_deterministic() {
    // A sample across all three families: the same hostile case must
    // produce the identical event log on every replay (the property the
    // golden trajectories rely on, checked here under adversarial inputs).
    for case_index in [0, 1, 2, 7, 13] {
        let case = generate_case(case_index);
        let first = run_case(&case).expect("hostile traces stay valid");
        let second = run_case(&case).expect("hostile traces stay valid");
        assert_eq!(
            first, second,
            "case {case_index} ({}) replayed differently",
            case.name
        );
    }
}
