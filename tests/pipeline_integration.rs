//! End-to-end integration tests: the full DOT pipeline over the real
//! workload models, spanning every crate in the workspace.

use dot_core::{constraints, dot, exhaustive, problem::Problem, toc};
use dot_dbms::EngineConfig;
use dot_profiler::{profile_workload, ProfileSource};
use dot_storage::catalog;
use dot_workloads::{tpcc, tpch, SlaSpec};

/// Small scale factors keep the suite fast; shapes are scale-invariant.
const SF: f64 = 2.0;

#[test]
fn tpch_pipeline_end_to_end() {
    let schema = tpch::schema(SF);
    let workload = tpch::original_workload(&schema);
    let pool = catalog::box2();
    let problem = Problem::new(
        &schema,
        &pool,
        &workload,
        SlaSpec::relative(0.5),
        EngineConfig::dss(),
    );
    let result = dot::run_pipeline(&problem, ProfileSource::Estimate, 2);
    let outcome = &result.outcome;
    let layout = outcome.layout.as_ref().expect("feasible");
    let est = outcome.estimate.as_ref().expect("estimated");

    // Constraint satisfaction and capacity.
    let cons = constraints::derive(&problem);
    assert!(cons.satisfied(&problem, layout, est));
    assert!(layout.fits(&schema, &pool));
    // Strictly cheaper than the all-premium reference.
    assert!(est.toc_cents_per_pass < cons.reference.toc_cents_per_pass);
    // Validation ran.
    assert!(result.validation.is_some());
}

#[test]
fn tpch_dot_beats_premium_by_a_wide_margin_at_relaxed_sla() {
    // The paper's headline: >3x TOC reduction vs All H-SSD at SLA 0.5.
    let schema = tpch::schema(SF);
    let workload = tpch::original_workload(&schema);
    for pool in [catalog::box1(), catalog::box2()] {
        let problem = Problem::new(
            &schema,
            &pool,
            &workload,
            SlaSpec::relative(0.5),
            EngineConfig::dss(),
        );
        let cons = constraints::derive(&problem);
        let profile = profile_workload(
            &workload,
            &schema,
            &pool,
            &problem.cfg,
            ProfileSource::Estimate,
        );
        let outcome = dot::optimize(&problem, &profile, &cons);
        let est = outcome.estimate.expect("feasible");
        let saving = cons.reference.toc_cents_per_pass / est.toc_cents_per_pass;
        assert!(saving > 3.0, "{}: saving only {saving:.2}x", pool.name());
    }
}

#[test]
fn tpch_subset_dot_close_to_exhaustive() {
    // §4.4.3: DOT within a modest factor of ES, orders of magnitude faster.
    let schema = tpch::subset_schema(SF);
    let workload = tpch::subset_workload(&schema);
    let pool = catalog::box2();
    let problem = Problem::new(
        &schema,
        &pool,
        &workload,
        SlaSpec::relative(0.5),
        EngineConfig::dss(),
    );
    let cons = constraints::derive(&problem);
    let profile = profile_workload(
        &workload,
        &schema,
        &pool,
        &problem.cfg,
        ProfileSource::Estimate,
    );
    let dot_out = dot::optimize(&problem, &profile, &cons);
    let es_out = exhaustive::exhaustive_search(&problem, &cons);
    let dot_toc = dot_out.estimate.expect("dot feasible").objective_cents;
    let es_toc = es_out.estimate.expect("es feasible").objective_cents;
    assert!(dot_toc >= es_toc - 1e-12, "ES is optimal");
    assert!(
        dot_toc <= es_toc * 1.5,
        "DOT {dot_toc:.4} vs ES {es_toc:.4}: gap too large"
    );
    assert!(dot_out.layouts_investigated < es_out.layouts_investigated / 10);
}

#[test]
fn tpcc_toc_decreases_as_sla_relaxes() {
    // Fig 8's shape: the OLTP objective (layout cost over the measurement
    // period) falls monotonically as the throughput floor loosens.
    let schema = tpcc::schema(20.0);
    let workload = tpcc::workload(&schema);
    let pool = catalog::box2();
    let cfg = EngineConfig::oltp();
    let profile = profile_workload(&workload, &schema, &pool, &cfg, ProfileSource::Estimate);
    let mut last = f64::INFINITY;
    for ratio in [0.5, 0.25, 0.125] {
        let problem = Problem::new(&schema, &pool, &workload, SlaSpec::relative(ratio), cfg);
        let cons = constraints::derive(&problem);
        let outcome = dot::optimize(&problem, &profile, &cons);
        let est = outcome.estimate.expect("feasible");
        assert!(
            est.objective_cents <= last + 1e-9,
            "objective should not increase as SLA relaxes"
        );
        // The throughput floor holds.
        assert!(est.throughput_tasks_per_hour >= cons.throughput_floor.unwrap());
        last = est.objective_cents;
    }
}

#[test]
fn tpcc_additive_es_close_to_dot_and_fast() {
    let schema = tpcc::schema(20.0);
    let workload = tpcc::workload(&schema);
    let pool = catalog::box2();
    let cfg = EngineConfig::oltp();
    let problem = Problem::new(&schema, &pool, &workload, SlaSpec::relative(0.25), cfg);
    let cons = constraints::derive(&problem);
    let profile = profile_workload(&workload, &schema, &pool, &cfg, ProfileSource::Estimate);
    let es = exhaustive::exhaustive_search_additive(&problem, &profile, &cons);
    let dot_out = dot::optimize(&problem, &profile, &cons);
    let es_obj = es.estimate.expect("es feasible").objective_cents;
    let dot_obj = dot_out.estimate.expect("dot feasible").objective_cents;
    // ES is (near-)optimal; DOT within 30%.
    assert!(dot_obj >= es_obj * 0.999);
    assert!(dot_obj <= es_obj * 1.3, "dot {dot_obj} vs es {es_obj}");
}

#[test]
fn capacity_limited_premium_forces_relaxation() {
    // Fig 9(b): with a tight H-SSD cap, the SLA must relax before any
    // solution exists; the relaxation loop recovers one.
    let schema = tpcc::schema(20.0);
    let workload = tpcc::workload(&schema);
    let mut pool = catalog::box2();
    pool.set_capacity("H-SSD", schema.total_size_gb() * 0.7);
    let cfg = EngineConfig::oltp();
    let problem = Problem::new(&schema, &pool, &workload, SlaSpec::relative(0.9), cfg);
    let profile = profile_workload(&workload, &schema, &pool, &cfg, ProfileSource::Estimate);
    let (outcome, final_sla) = dot::optimize_with_relaxation(&problem, &profile, 0.2, 0.01);
    let layout = outcome.layout.expect("relaxation recovers");
    assert!(final_sla.ratio < 0.9);
    assert!(layout.fits(&schema, &pool));
}

#[test]
fn refinement_uses_runtime_statistics() {
    // Force a validation failure by profiling from estimates but validating
    // against simulated runs with caching: the pipeline must at least run
    // its refinement loop without diverging.
    let schema = tpch::schema(SF);
    let workload = tpch::modified_workload(&schema);
    let pool = catalog::box1();
    let problem = Problem::new(
        &schema,
        &pool,
        &workload,
        SlaSpec::relative(0.25),
        EngineConfig::dss(),
    );
    let result = dot::run_pipeline(&problem, ProfileSource::Estimate, 3);
    assert!(result.refinement_rounds <= 3);
    if let Some(v) = &result.validation {
        assert!(v.psr >= 0.0 && v.psr <= 1.0);
    }
}

#[test]
fn estimates_are_reproducible_across_calls() {
    let schema = tpch::schema(SF);
    let workload = tpch::original_workload(&schema);
    let pool = catalog::box2();
    let problem = Problem::new(
        &schema,
        &pool,
        &workload,
        SlaSpec::relative(0.5),
        EngineConfig::dss(),
    );
    let l = problem.premium_layout();
    let a = toc::estimate_toc(&problem, &l);
    let b = toc::estimate_toc(&problem, &l);
    assert_eq!(a, b);
}
