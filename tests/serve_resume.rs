//! The durability acceptance test: `kill -9` a `dot-serve` daemon
//! mid-session, restart it on the same `--state-dir`, re-attach by tenant
//! id, and the resumed trajectory matches the uninterrupted offline
//! scenario simulator golden — a hard crash costs at most the quiet ticks
//! since the last durability point (attach/apply/detach/shutdown), never
//! the session.

mod scenario;

use dot_core::controller::{ControlEvent, TraceStep};
use dot_serve::framing::write_frame;
use dot_serve::protocol::{ProblemSpec, Request, RequestFrame, Response, ResponseFrame, TenantId};
use scenario::CacheMode;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
            next_id: 1,
        }
    }

    fn request(&mut self, request: Request) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &RequestFrame { id, request }).expect("send");
        id
    }

    fn recv(&mut self) -> ResponseFrame {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(!line.is_empty(), "server closed the connection");
        serde_json::from_str(line.trim()).expect("parse response")
    }

    fn attach(&mut self, name: &str) -> TenantId {
        let id = self.request(Request::AttachTenant {
            name: Some(name.to_owned()),
            problem: problem_spec(),
            deployed: None,
            controller: Some(scenario::config()),
        });
        let frame = self.recv();
        assert_eq!(frame.id, id);
        match frame.response {
            Response::Attached { tenant, .. } => tenant,
            other => panic!("attach: {other:?}"),
        }
    }

    fn observe(&mut self, tenant: TenantId, step: &TraceStep) -> (Vec<ControlEvent>, u64) {
        let id = self.request(Request::Observe {
            tenant,
            step: step.clone(),
        });
        let mut events = Vec::new();
        loop {
            let frame = self.recv();
            assert_eq!(frame.id, id);
            match frame.response {
                Response::Event {
                    tenant: from,
                    event,
                } => {
                    assert_eq!(from, tenant);
                    events.push(event);
                }
                Response::ObserveDone {
                    tenant: from,
                    ticks,
                    ..
                } => {
                    assert_eq!(from, tenant);
                    return (events, ticks);
                }
                other => panic!("observe: {other:?}"),
            }
        }
    }
}

/// The simulator's fixed problem, spelled as the wire-protocol spec.
fn problem_spec() -> ProblemSpec {
    serde_json::from_str("{\"pool\": \"box2\", \"database\": \"tpcc:2\", \"sla\": 0.5}")
        .expect("problem spec")
}

/// Spawn the standalone daemon on an ephemeral port with a state dir and
/// wait for its readiness announcement. The stdout reader is returned
/// alongside the child: dropping it would close the pipe and turn the
/// daemon's final "shut down" println into a broken-pipe abort.
fn spawn_daemon(state_dir: &Path) -> (Child, SocketAddr, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dot-serve"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--state-dir",
            state_dir.to_str().expect("utf-8 state dir"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dot-serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("announcement");
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .parse()
        .expect("bound address");
    (child, addr, stdout)
}

fn step(text: &str) -> TraceStep {
    serde_json::from_str(text).expect("trace step")
}

#[test]
fn kill_dash_nine_then_restart_resumes_the_golden_trajectory() {
    // The flip trajectory: two migrations (ticks 2 and 5), so the crash
    // window sits between two applied plans and the resumed session still
    // has drift to detect and a plan to apply.
    let scenarios = scenario::scenarios();
    let flip = scenarios
        .iter()
        .find(|s| s.name == "flip")
        .expect("flip scenario");
    let golden = scenario::run(&flip.steps, CacheMode::Off);

    let state_dir: PathBuf =
        std::env::temp_dir().join(format!("dot-serve-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    // Daemon 1: attach and replay the first three script steps (ticks
    // 0..=4 — past the tick-2 migration, which is a durability point that
    // checkpoints the tenant at tick 3).
    let (mut child, addr, _stdout) = spawn_daemon(&state_dir);
    let mut client = Client::connect(addr);
    let tenant = client.attach("acme");
    let mut pre_kill = Vec::new();
    for s in &flip.steps[..3] {
        let (events, _) = client.observe(tenant, s);
        pre_kill.extend(events);
    }
    assert_eq!(
        pre_kill.as_slice(),
        &golden[..pre_kill.len()],
        "the pre-crash stream is a golden prefix"
    );

    // SIGKILL: no flush, no graceful anything.
    child.kill().expect("kill -9 the daemon");
    child.wait().expect("reap");

    // Daemon 2, same state dir. The durable checkpoint is the tick-2
    // apply (tick 3); the two quiet analytical ticks after it are the
    // documented loss window. The client discovers the resume point from
    // Stats and replays from there.
    let (mut child, addr, _stdout) = spawn_daemon(&state_dir);
    let mut client = Client::connect(addr);
    client.request(Request::Stats);
    let resumed_at = match client.recv().response {
        Response::Stats { tenants, ticks, .. } => {
            assert_eq!(tenants, 1, "the tenant survived the kill");
            assert_eq!(
                ticks, 3,
                "the durable checkpoint is the tick-2 apply, not the crash point"
            );
            ticks
        }
        other => panic!("stats: {other:?}"),
    };

    // Replay everything from the checkpoint: the rest of the analytical
    // phase, then the baseline steps — by the same tenant id.
    let mut resumed = Vec::new();
    let (events, _) = client.observe(tenant, &step("{\"phase\": \"analytical\", \"repeat\": 2}"));
    resumed.extend(events);
    let (events, ticks) = client.observe(tenant, &step("{\"baseline\": true, \"repeat\": 2}"));
    resumed.extend(events);
    assert_eq!(ticks, 7, "lifetime ticks span the crash");

    let expected: Vec<ControlEvent> = golden
        .iter()
        .filter(|e| e.tick() >= resumed_at)
        .cloned()
        .collect();
    assert_eq!(
        resumed, expected,
        "the resumed trajectory (including the second migration) matches the golden"
    );

    // Graceful shutdown this time.
    client.request(Request::Shutdown);
    match client.recv().response {
        Response::ShuttingDown { tenants } => {
            assert_eq!(tenants.len(), 1);
            assert_eq!(tenants[0].ticks, 7);
        }
        other => panic!("shutdown: {other:?}"),
    }
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "{status:?}");
    let _ = std::fs::remove_dir_all(&state_dir);
}
