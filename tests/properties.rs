//! Property-based tests over the core data structures and optimizer
//! invariants, using randomly generated schemas, workloads and pools.

use dot_core::{constraints, dot, moves, problem::Problem, toc};
use dot_dbms::query::{QuerySpec, ReadOp, Rel, ScanSpec};
use dot_dbms::{EngineConfig, Layout, SchemaBuilder};
use dot_profiler::{baseline, profile_workload, ProfileSource};
use dot_storage::{catalog, ClassId};
use dot_workloads::{SlaSpec, Workload};
use proptest::prelude::*;

/// Random schema: 1–4 tables, each with a primary index and 0–1 secondary.
fn arb_schema() -> impl Strategy<Value = dot_dbms::Schema> {
    proptest::collection::vec(
        (
            1_000.0..5_000_000.0f64, // rows
            40.0..400.0f64,          // row bytes
            proptest::bool::ANY,     // secondary index?
        ),
        1..4,
    )
    .prop_map(|tables| {
        let mut b = SchemaBuilder::new("prop");
        for (i, (rows, bytes, secondary)) in tables.into_iter().enumerate() {
            b = b.table(&format!("t{i}"), rows, bytes).primary_index(8.0);
            if secondary {
                b = b.index(&format!("t{i}_sec"), 8.0);
            }
        }
        b.build()
    })
}

/// Random read-mostly workload over a schema.
fn workload_for(schema: &dot_dbms::Schema, selectivities: &[f64]) -> Workload {
    let queries: Vec<QuerySpec> = schema
        .tables()
        .iter()
        .zip(selectivities.iter().cycle())
        .map(|(t, &sel)| {
            let pk = schema.primary_index_of(t.id).expect("pk").id;
            QuerySpec::read(
                &format!("q_{}", t.name),
                ReadOp::of(Rel::Scan(ScanSpec::indexed(t.id, sel, pk))),
            )
        })
        .collect();
    Workload::dss("prop", queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Layout cost is the exact dot product of prices and per-class space,
    /// for any assignment.
    #[test]
    fn layout_cost_matches_manual_sum(
        schema in arb_schema(),
        assignment_seed in proptest::collection::vec(0usize..3, 1..16),
    ) {
        let pool = catalog::box2();
        let classes: Vec<ClassId> = pool.ids().collect();
        let assignment: Vec<ClassId> = (0..schema.object_count())
            .map(|i| classes[assignment_seed[i % assignment_seed.len()] % classes.len()])
            .collect();
        let layout = Layout::from_assignment(assignment);
        let mut manual = 0.0;
        for o in schema.objects() {
            manual += pool.class_unchecked(layout.class_of(o.id)).price_cents_per_gb_hour
                * o.size_gb;
        }
        let cost = layout.cost_cents_per_hour(&schema, &pool);
        prop_assert!((cost - manual).abs() < 1e-9);
    }

    /// Estimated response time is monotone in device speed: placing every
    /// object on a strictly faster class can never slow any query down.
    #[test]
    fn time_is_monotone_in_device_speed(
        schema in arb_schema(),
        sel in 1e-5..0.9f64,
    ) {
        let pool = catalog::box2();
        let w = workload_for(&schema, &[sel]);
        let p = Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
        let hssd = pool.class_by_name("H-SSD").unwrap().id;
        let hdd = pool.class_by_name("HDD").unwrap().id;
        let fast = toc::estimate_toc(&p, &Layout::uniform(hssd, schema.object_count()));
        let slow = toc::estimate_toc(&p, &Layout::uniform(hdd, schema.object_count()));
        for (f, s) in fast.per_query_ms.iter().zip(&slow.per_query_ms) {
            prop_assert!(f <= &(s * 1.0000001), "fast {f} > slow {s}");
        }
    }

    /// Moves preserve the rest of the layout and exactly apply their
    /// placement; scores are finite and sorted.
    #[test]
    fn enumerated_moves_are_wellformed(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
    ) {
        let pool = catalog::box2();
        let w = workload_for(&schema, &[sel]);
        let p = Problem::new(&schema, &pool, &w, SlaSpec::relative(0.5), EngineConfig::dss());
        let prof = profile_workload(&w, &schema, &pool, &p.cfg, ProfileSource::Estimate);
        let l0 = p.premium_layout();
        let ms = moves::enumerate_moves(&p, &prof);
        let mut prev = f64::NEG_INFINITY;
        for m in &ms {
            prop_assert!(m.score.is_finite());
            prop_assert!(m.score >= prev);
            prev = m.score;
            prop_assert!(m.delta_cost > 0.0);
            let applied = m.apply(&l0);
            for o in schema.objects() {
                match m.objects.iter().position(|x| *x == o.id) {
                    Some(k) => prop_assert_eq!(applied.class_of(o.id), m.placement[k]),
                    None => prop_assert_eq!(applied.class_of(o.id), l0.class_of(o.id)),
                }
            }
        }
    }

    /// The DOT recommendation always satisfies capacity and SLA, and never
    /// costs more than the premium layout.
    #[test]
    fn dot_recommendation_invariants(
        schema in arb_schema(),
        sel in 1e-4..0.5f64,
        ratio in 0.05..0.9f64,
    ) {
        let pool = catalog::box2();
        let w = workload_for(&schema, &[sel]);
        let p = Problem::new(&schema, &pool, &w, SlaSpec::relative(ratio), EngineConfig::dss());
        let cons = constraints::derive(&p);
        let prof = profile_workload(&w, &schema, &pool, &p.cfg, ProfileSource::Estimate);
        let out = dot::optimize(&p, &prof, &cons);
        if let (Some(layout), Some(est)) = (&out.layout, &out.estimate) {
            prop_assert!(layout.fits(&schema, &pool));
            prop_assert!(cons.satisfied(&p, layout, est));
            prop_assert!(est.objective_cents <= cons.reference.objective_cents + 1e-12);
            prop_assert!((cons.psr(est) - 1.0).abs() < 1e-12);
        }
    }

    /// Baseline layouts place every group position-wise, and projections
    /// reconstruct the group placements exactly.
    #[test]
    fn baseline_layouts_are_consistent(schema in arb_schema()) {
        let pool = catalog::box1();
        let arity = baseline::group_arity(&schema);
        prop_assert!(arity >= 2);
        for placement in baseline::baseline_placements(&pool, arity) {
            let layout = baseline::baseline_layout(&schema, &placement);
            for group in schema.object_groups() {
                let proj = baseline::project_placement(&placement, group.len());
                for (k, obj) in group.iter().enumerate() {
                    prop_assert_eq!(layout.class_of(*obj), proj[k]);
                }
            }
        }
    }

    /// The discrete cost model at alpha=0 equals the linear model, and is
    /// monotone in alpha for any fixed layout.
    #[test]
    fn discrete_cost_monotone_in_alpha(
        schema in arb_schema(),
        class_idx in 0usize..3,
    ) {
        use dot_core::problem::LayoutCostModel;
        let pool = catalog::box2();
        let class = pool.classes()[class_idx].id;
        let layout = Layout::uniform(class, schema.object_count());
        let linear = LayoutCostModel::Linear
            .layout_cost_cents_per_hour(&layout, &schema, &pool);
        let mut prev = linear;
        for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let c = LayoutCostModel::Discrete { alpha }
                .layout_cost_cents_per_hour(&layout, &schema, &pool);
            if alpha == 0.0 {
                prop_assert!((c - linear).abs() < 1e-9);
            }
            prop_assert!(c >= prev - 1e-9);
            prev = c;
        }
    }
}
