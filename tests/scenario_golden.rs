//! Golden scenario snapshots: the four scripted drift trajectories of the
//! scenario simulator, each pinned to a committed expected `ControlEvent`
//! log under `tests/golden/`.
//!
//! Comparison is **structural**: the committed JSON parses back into
//! `Vec<ControlEvent>` and is compared with `assert_eq!` — never
//! string-wise — so formatting is irrelevant and every float must match
//! bit for bit. Each trajectory first replays under all three cache modes
//! (off / cold / warm) and must produce the identical log before the
//! golden comparison runs: the controller's behaviour may not depend on
//! how estimates are obtained.
//!
//! To regenerate after an intentional behaviour change:
//! `UPDATE_GOLDEN=1 cargo test --test scenario_golden`.

mod scenario;

use dot_core::controller::ControlEvent;
use scenario::{run, scenarios, CacheMode};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check(name: &str) {
    let scenario = scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .expect("known scenario");
    let off = run(&scenario.steps, CacheMode::Off);
    let cold = run(&scenario.steps, CacheMode::Cold);
    let warm = run(&scenario.steps, CacheMode::Warm);
    assert_eq!(off, cold, "{name}: cache-off and cache-cold logs differ");
    assert_eq!(off, warm, "{name}: cache-off and cache-warm logs differ");

    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let json = serde_json::to_string_pretty(&off).expect("log serializes");
        std::fs::write(&path, json + "\n").expect("write golden file");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: no golden log at {} ({e}); run UPDATE_GOLDEN=1 \
             cargo test --test scenario_golden to create it",
            path.display()
        )
    });
    let expected: Vec<ControlEvent> =
        serde_json::from_str(&committed).expect("golden log parses structurally");
    assert_eq!(
        off, expected,
        "{name}: the controller's event log drifted from the committed \
         golden log; if the change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test scenario_golden"
    );
}

#[test]
fn gradual_shift_matches_the_golden_log() {
    check("gradual");
}

#[test]
fn sudden_phase_flip_matches_the_golden_log() {
    check("flip");
}

#[test]
fn oscillation_matches_the_golden_log_without_flapping() {
    check("oscillation");
    // Beyond the snapshot: oscillating phases must never trigger on
    // consecutive ticks (the cool-down guarantee, asserted structurally).
    let scenario = scenarios()
        .into_iter()
        .find(|s| s.name == "oscillation")
        .expect("known scenario");
    let log = run(&scenario.steps, CacheMode::Off);
    let trigger_ticks: Vec<u64> = log
        .iter()
        .filter_map(|e| match e {
            ControlEvent::Triggered { tick, .. } => Some(*tick),
            _ => None,
        })
        .collect();
    assert!(!trigger_ticks.is_empty(), "oscillation must trigger at all");
    for pair in trigger_ticks.windows(2) {
        assert!(
            pair[1] - pair[0] >= scenario::config().cooldown_ticks,
            "triggers at ticks {} and {} violate the cool-down",
            pair[0],
            pair[1]
        );
    }
}

#[test]
fn diurnal_cycle_matches_the_golden_log() {
    check("diurnal");
    // Beyond the snapshot: a diurnal cycle must not flap — the cool-down
    // spacing holds across day boundaries too.
    let scenario = scenarios()
        .into_iter()
        .find(|s| s.name == "diurnal")
        .expect("known scenario");
    let log = run(&scenario.steps, CacheMode::Off);
    let trigger_ticks: Vec<u64> = log
        .iter()
        .filter_map(|e| match e {
            ControlEvent::Triggered { tick, .. } => Some(*tick),
            _ => None,
        })
        .collect();
    assert!(!trigger_ticks.is_empty(), "the diurnal peak must trigger");
    for pair in trigger_ticks.windows(2) {
        assert!(
            pair[1] - pair[0] >= scenario::config().cooldown_ticks,
            "triggers at ticks {} and {} violate the cool-down",
            pair[0],
            pair[1]
        );
    }
}

#[test]
fn flash_crowd_matches_the_golden_log() {
    check("flash");
}

#[test]
fn noise_only_matches_the_golden_log_and_stays_quiet() {
    check("noise");
    let scenario = scenarios()
        .into_iter()
        .find(|s| s.name == "noise")
        .expect("known scenario");
    let log = run(&scenario.steps, CacheMode::Off);
    assert!(
        log.iter()
            .all(|e| matches!(e, ControlEvent::Observed { .. })),
        "sub-threshold noise must produce observations only"
    );
}
