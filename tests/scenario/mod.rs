//! Deterministic scenario simulator for the online controller: scripted
//! drift trajectories over one fixed TPC-C problem, replayed tick by tick
//! through `dot_core::controller::Controller`, returning the typed
//! [`ControlEvent`] log.
//!
//! The simulator is pure: the problem is fixed, traces are scripted
//! [`TraceStep`]s, the controller is time-stepped with no wall clock, and
//! estimates are bit-identical with or without a TOC cache — so a
//! trajectory always yields the same event log, whatever [`CacheMode`] it
//! runs under. The golden suite (`tests/scenario_golden.rs`) pins the four
//! committed trajectories; the property suite (`tests/controller_props.rs`)
//! covers randomized ones.

use dot_core::advisor::Advisor;
use dot_core::controller::{expand_trace, ControlEvent, Controller, ControllerConfig, TraceStep};
use dot_core::toc::CachedEstimator;
use dot_storage::catalog;
use dot_workloads::tpcc;
use std::sync::Arc;

/// How the simulated controller obtains TOC estimates.
// The module is compiled into several test binaries; not every binary
// exercises every mode (the daemon e2e replays under `Off` only).
#[allow(dead_code)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// No cache: every estimate goes straight through the planner.
    Off,
    /// A fresh, empty shared cache.
    Cold,
    /// A cache pre-warmed by a full prior replay of the same trajectory.
    Warm,
}

/// One scripted trajectory.
pub struct Scenario {
    /// Stable name — also the golden file's stem under `tests/golden/`.
    pub name: &'static str,
    /// The trace script, relative to the TPC-C baseline.
    pub steps: Vec<TraceStep>,
}

fn step(phase: Option<&str>, shift: Option<f64>, repeat: usize) -> TraceStep {
    TraceStep {
        shift,
        scale: None,
        phase: phase.map(str::to_owned),
        repeat: Some(repeat),
    }
}

/// The four committed trajectories: gradual shift, sudden phase flip,
/// oscillation, and noise-only.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        // Reads creep up tick by tick until the drift threshold is crossed.
        Scenario {
            name: "gradual",
            steps: (1..=8)
                .map(|k| step(None, Some(-0.1 * k as f64), 1))
                .collect(),
        },
        // Two noisy transactional ticks, then the analytical phase arrives
        // and holds: exactly one migration, then quiet on the new baseline.
        Scenario {
            name: "flip",
            steps: vec![
                step(None, Some(0.02), 1),
                step(None, Some(-0.03), 1),
                step(Some("analytical"), None, 3),
                step(Some("baseline"), None, 2),
            ],
        },
        // The phases alternate every tick: the cool-down must bound the
        // trigger rate instead of flapping on every observation.
        Scenario {
            name: "oscillation",
            steps: vec![
                step(Some("analytical"), None, 1),
                step(Some("baseline"), None, 1),
                step(Some("analytical"), None, 1),
                step(Some("baseline"), None, 1),
                step(Some("analytical"), None, 1),
                step(Some("baseline"), None, 1),
            ],
        },
        // Sub-threshold noise only: the log is pure observations.
        Scenario {
            name: "noise",
            steps: vec![
                step(None, Some(0.02), 1),
                step(None, Some(-0.04), 1),
                step(None, Some(0.05), 1),
                step(None, Some(-0.01), 1),
                step(None, Some(0.03), 1),
                step(None, Some(-0.05), 1),
            ],
        },
        // Two generated days of a read-heavy diurnal cycle: the peak
        // crosses the threshold, the trough drifts back, and day two must
        // replay day one's decisions against whatever baseline the
        // controller re-anchored on (`dot_core::traces::diurnal`).
        Scenario {
            name: "diurnal",
            steps: dot_core::traces::diurnal(-0.5, 6, 2).expect("valid diurnal spec"),
        },
        // A generated flash crowd: quiet, a 4x demand spike held two
        // ticks, then a linear decay back to baseline
        // (`dot_core::traces::flash_crowd`).
        Scenario {
            name: "flash",
            steps: dot_core::traces::flash_crowd(4.0, 2, 2, 3).expect("valid flash spec"),
        },
    ]
}

/// The simulator's fixed controller configuration.
pub fn config() -> ControllerConfig {
    ControllerConfig {
        cooldown_ticks: 2,
        ..ControllerConfig::default()
    }
}

// The telemetry suite replays through `Controller::run_source` instead of
// these helpers, so they are dead code in that binary.
#[allow(dead_code)]
fn replay(steps: &[TraceStep], cache: Option<&Arc<CachedEstimator>>) -> Vec<ControlEvent> {
    let schema = tpcc::schema(2.0);
    let pool = catalog::box2();
    let baseline = tpcc::workload(&schema);
    let deployed = Advisor::builder(&schema, &pool, &baseline)
        .sla(0.5)
        .build()
        .expect("baseline session")
        .recommend("dot")
        .expect("baseline layout")
        .layout;
    let mut controller = Controller::new(&schema, &pool, &baseline, deployed, 0.5, config())
        .expect("controller opens");
    if let Some(cache) = cache {
        controller = controller.with_toc_cache(Arc::clone(cache));
    }
    let trace = expand_trace(&schema, &baseline, steps).expect("script expands");
    controller.run_trace(&trace).expect("trace replays");
    controller.events().to_vec()
}

/// Replay a trajectory under the given cache mode and return its log.
#[allow(dead_code)]
pub fn run(steps: &[TraceStep], mode: CacheMode) -> Vec<ControlEvent> {
    match mode {
        CacheMode::Off => replay(steps, None),
        CacheMode::Cold => replay(steps, Some(&Arc::new(CachedEstimator::new()))),
        CacheMode::Warm => {
            let cache = Arc::new(CachedEstimator::new());
            let _ = replay(steps, Some(&cache));
            assert!(cache.stats().entries > 0, "warm-up must fill the cache");
            replay(steps, Some(&cache))
        }
    }
}
