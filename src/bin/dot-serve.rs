//! Standalone entry point for the provisioning daemon; `dot-cli serve`
//! reaches the same [`dot_serve::cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dot_serve::cli::run(&args));
}
