//! `dot-cli` — provision storage from the command line, through the
//! `dot_core::advisor` facade.
//!
//! ```text
//! dot-cli catalog                      list built-in pools and Table 1 profiles
//! dot-cli solvers                      list every registered solver id
//! dot-cli provision <problem.json>     run a solver on a problem file
//!         [--solver <id>]              pick the optimizer (default "dot")
//!         [--json]                     emit the serialized Recommendation
//! dot-cli fleet     <manifest.json>    batch-provision N tenant databases
//!         [--solver <id>]              default solver for tenants naming none
//!         [--json]                     emit the serialized FleetReport
//! dot-cli replan    <problem.json>     plan a migration for a drifted workload
//!         --current <layout.json>      the deployed layout (or a saved
//!                                      `provision --json` recommendation)
//!         [--solver <id>]              target solver (default "dot")
//!         [--budget-bytes <n>]         data-movement ceiling in bytes
//!         [--budget-seconds <n>]       scheduled wall-clock ceiling in seconds
//!                                      (the wave makespan, not the copy sum)
//!         [--budget-cents <n>]         migration-spend ceiling in cents
//!         [--sla-during-migration <r>] relative SLA the *in-flight* estimate
//!                                      must hold while transfer waves run
//!         [--window-seconds <n>]       split the rollout into recurring
//!                                      maintenance windows of this length,
//!                                      replanning between windows
//!         [--json]                     emit the ReplanEnvelope (provenance + plan)
//! dot-cli supervise <problem.json>     run the online controller over a trace
//!         --trace <trace.json>         scripted observations (TraceStep array)
//!         --trace-gen <spec>           generate the trace instead, e.g.
//!                                      "diurnal:amplitude=-0.4,period=8,days=3"
//!                                      (see `dot_core::traces::generate`)
//!         [--current <layout.json>]    deployed layout (default: provision the
//!                                      problem's baseline with the solver)
//!         [--solver <id>]              replan target solver (default "dot")
//!         [--drift-threshold <x>]      trigger distance in [0, 1] (default 0.15)
//!         [--cooldown <n>]             min ticks between triggers (default 3)
//!         [--window-ticks <n>]         maintenance window: every n ticks,
//!                                      continue a pending partial rollout
//!                                      even with drift and SLA quiet
//!         [--budget-*]                 migration budget, as replan
//!         [--json]                     emit the serialized SuperviseFleetReport
//!         [--stream]                   emit JSON-lines ControlEvent frames per
//!                                      tick instead of one batched report
//! dot-cli serve     [flags]            run the provisioning daemon (see
//!                                      `dot-serve --help`; same entry point)
//! dot-cli explain   <problem.json>     show premium-layout plans and I/O
//! ```
//!
//! `replan` reads the *drifted* problem (same format as `provision`) plus
//! the layout the database is deployed on today, and answers with an
//! ordered migration plan: per-move data movement, transfer time from the
//! device models, double-residency migration cost, and the break-even
//! horizon — or a `stay`/`unchanged` verdict when migrating is not worth
//! the movement. Unknown keys in problem files, fleet manifests, and trace
//! files are rejected as invalid requests rather than silently ignored.
//!
//! `supervise --stream` swaps the batched report for a live JSON-lines
//! stream of the `dot-serve` wire protocol's frames: one `Event` frame per
//! control event as each tick completes, a final `Detached` frame carrying
//! the tenant summary (or an `Error` frame with the typed failure), so a
//! supervised session scripts identically whether it ran offline or
//! against the daemon.
//!
//! `supervise` closes the loop: the problem file describes the *baseline*
//! phase, and the trace file scripts a sequence of observed profiles as
//! drifts of that baseline — a JSON array of steps like
//! `[{"shift": 0.3}, {"phase": "analytical", "repeat": 2}, {"scale": 2.0}]`
//! — which the online controller (`dot_core::controller`) replays,
//! triggering `replan` whenever the drift distance or SLA pressure crosses
//! its threshold (with hysteresis and a cool-down, so it never flaps), and
//! logging typed `ControlEvent`s. Both `--json` outputs stamp the shared
//! `ControlProvenance` schema: `replan` with the `Manual` trigger stub,
//! `supervise` with each tenant's last trigger reason.
//!
//! A problem file names a storage pool (built-in or inline JSON), a database
//! (preset like `"tpch:20:original"`, `"tpcc:300"`, `"ycsb:10000000:A"`, or
//! inline schema+workload JSON), a relative SLA, and an engine preset:
//!
//! ```json
//! { "pool": "box2", "database": "tpch:4:original", "sla": 0.5, "engine": "dss" }
//! ```
//!
//! A fleet manifest is a worker count plus one such entry per tenant —
//! the same fields as a problem file (`engine` and `refinements`
//! included), plus optional `name` and `solver`:
//!
//! ```json
//! { "workers": 4, "tenants": [
//!     { "name": "acme", "pool": "box2", "database": "tpch-subset:1", "sla": 0.5 },
//!     { "pool": "box2", "database": "tpcc:2", "sla": 0.25, "solver": "es-additive" }
//! ] }
//! ```
//!
//! Tenants are provisioned concurrently over one shared memoized TOC cache
//! (`dot_core::fleet`); the report carries per-tenant recommendations or
//! typed errors, the fleet-wide bill, and the cache hit rate. Per-tenant
//! failures do not fail the batch — only a malformed manifest does.
//!
//! Failures exit with a distinct code per [`ProvisionError`] variant (see
//! [`exit_code`]), so scripts can tell an unknown pool from an infeasible
//! SLA without parsing stderr; `--json` renders the error itself as JSON.

use dot_core::advisor::{presets, Advisor, ProvisionError, Recommendation};
use dot_core::controller::{
    ControlEvent, ControlProvenance, ControllerConfig, DeferReason, ReplanEnvelope, TraceStep,
    TriggerReason,
};
use dot_core::fleet::{self, FleetConfig, FleetReport, SuperviseTenantRequest, TenantRequest};
use dot_core::replan::{
    MigrationBudget, MigrationDecision, ReplanOptions, ReplanRecommendation, WindowedRollout,
};
use dot_dbms::{explain, planner, EngineConfig, Layout, Schema};
use dot_storage::StoragePool;
use dot_workloads::Workload;
use serde::Deserialize;
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

#[derive(Deserialize)]
struct ProblemFile {
    pool: PoolSpec,
    database: DbSpec,
    sla: f64,
    #[serde(default)]
    engine: Option<String>,
    #[serde(default)]
    refinements: Option<usize>,
}

/// The keys a problem file / fleet tenant entry / fleet manifest accepts.
/// The vendored serde derive ignores unknown keys, so the loaders check
/// them explicitly: a typo'd or unsupported key is an invalid request, not
/// a silently-dropped setting.
const PROBLEM_KEYS: [&str; 5] = ["pool", "database", "sla", "engine", "refinements"];
const TENANT_KEYS: [&str; 7] = [
    "name",
    "pool",
    "database",
    "sla",
    "solver",
    "engine",
    "refinements",
];
const MANIFEST_KEYS: [&str; 3] = ["workers", "cache_capacity", "tenants"];

/// Reject unknown keys at one level of a parsed JSON object (nested
/// structures — inline pools, schemas — validate through their own types).
fn check_keys(value: &serde::Value, allowed: &[&str], context: &str) -> Result<(), ProvisionError> {
    let Some(entries) = value.as_object() else {
        return Ok(()); // a shape error surfaces from the typed parse
    };
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(ProvisionError::InvalidRequest {
                reason: format!(
                    "{context}: unknown key {key:?} (known: {})",
                    allowed.join(", ")
                ),
            });
        }
    }
    Ok(())
}

#[derive(Deserialize)]
#[serde(untagged)]
enum PoolSpec {
    Name(String),
    Custom(StoragePool),
}

#[derive(Deserialize)]
#[serde(untagged)]
enum DbSpec {
    Preset(String),
    Custom { schema: Schema, workload: Workload },
}

/// Everything a problem file resolves to.
struct Request {
    pool: StoragePool,
    schema: Schema,
    workload: Workload,
    sla: f64,
    engine: EngineConfig,
    /// Whether the file named an engine explicitly. `supervise` only forces
    /// `engine` onto the controller then — otherwise each observation picks
    /// its own metric default (a phase flip changes the metric).
    engine_explicit: bool,
    refinements: usize,
}

fn load(path: &str) -> Result<Request, ProvisionError> {
    let text = std::fs::read_to_string(path).map_err(|e| ProvisionError::InvalidRequest {
        reason: format!("read {path}: {e}"),
    })?;
    let value: serde::Value =
        serde_json::from_str(&text).map_err(|e| ProvisionError::InvalidRequest {
            reason: format!("parse {path}: {e}"),
        })?;
    check_keys(&value, &PROBLEM_KEYS, path)?;
    let file = ProblemFile::from_value(&value).map_err(|e| ProvisionError::InvalidRequest {
        reason: format!("parse {path}: {e}"),
    })?;
    ProvisionError::check_sla(file.sla, "")?;
    let pool = match file.pool {
        PoolSpec::Custom(pool) => pool,
        PoolSpec::Name(name) => presets::pool(&name)?,
    };
    let (schema, workload) = match file.database {
        DbSpec::Custom { schema, workload } => (schema, workload),
        DbSpec::Preset(preset) => presets::database(&preset)?,
    };
    let engine_explicit = file.engine.is_some();
    let engine = presets::engine(file.engine.as_deref(), &workload)?;
    Ok(Request {
        pool,
        schema,
        workload,
        sla: file.sla,
        engine,
        engine_explicit,
        refinements: file.refinements.unwrap_or(1),
    })
}

#[derive(Deserialize)]
struct FleetManifest {
    #[serde(default)]
    workers: Option<usize>,
    #[serde(default)]
    cache_capacity: Option<usize>,
    tenants: Vec<TenantEntry>,
}

#[derive(Deserialize)]
struct TenantEntry {
    #[serde(default)]
    name: Option<String>,
    pool: PoolSpec,
    database: DbSpec,
    sla: f64,
    #[serde(default)]
    solver: Option<String>,
    #[serde(default)]
    engine: Option<String>,
    #[serde(default)]
    refinements: Option<usize>,
}

fn load_fleet(path: &str) -> Result<(Vec<TenantRequest>, FleetConfig), ProvisionError> {
    let text = std::fs::read_to_string(path).map_err(|e| ProvisionError::InvalidRequest {
        reason: format!("read {path}: {e}"),
    })?;
    let value: serde::Value =
        serde_json::from_str(&text).map_err(|e| ProvisionError::InvalidRequest {
            reason: format!("parse {path}: {e}"),
        })?;
    check_keys(&value, &MANIFEST_KEYS, path)?;
    if let Some(entries) = value.as_object() {
        if let Some((_, serde::Value::Array(tenants))) =
            entries.iter().find(|(k, _)| k == "tenants")
        {
            for (i, tenant) in tenants.iter().enumerate() {
                check_keys(tenant, &TENANT_KEYS, &format!("{path}: tenant {i}"))?;
            }
        }
    }
    let manifest =
        FleetManifest::from_value(&value).map_err(|e| ProvisionError::InvalidRequest {
            reason: format!("parse {path}: {e}"),
        })?;
    if manifest.tenants.is_empty() {
        return Err(ProvisionError::InvalidRequest {
            reason: format!("{path}: a fleet manifest needs at least one tenant"),
        });
    }
    let mut tenants = Vec::with_capacity(manifest.tenants.len());
    for (i, entry) in manifest.tenants.into_iter().enumerate() {
        let name = entry.name.unwrap_or_else(|| format!("tenant-{i}"));
        ProvisionError::check_sla(entry.sla, &format!("tenant {name:?}"))?;
        let pool = match entry.pool {
            PoolSpec::Custom(pool) => pool,
            PoolSpec::Name(name) => presets::pool(&name)?,
        };
        let (schema, workload) = match entry.database {
            DbSpec::Custom { schema, workload } => (schema, workload),
            DbSpec::Preset(preset) => presets::database(&preset)?,
        };
        // A named engine preset resolves here; absent, the library picks
        // the workload-metric default (same as single-tenant problems).
        let engine = match entry.engine.as_deref() {
            Some(name) => Some(presets::engine(Some(name), &workload)?),
            None => None,
        };
        tenants.push(TenantRequest {
            name,
            pool,
            schema,
            workload,
            sla: entry.sla,
            solver: entry.solver,
            engine,
            refinements: entry.refinements,
        });
    }
    let defaults = FleetConfig::default();
    Ok((
        tenants,
        FleetConfig {
            workers: manifest.workers.unwrap_or(defaults.workers),
            cache_capacity: manifest.cache_capacity.unwrap_or(defaults.cache_capacity),
            ..defaults
        },
    ))
}

fn cmd_fleet(path: &str, default_solver: Option<&str>, json: bool) -> Result<(), ProvisionError> {
    let (mut tenants, config) = load_fleet(path)?;
    // An explicit --solver becomes the default for tenants whose manifest
    // entry names none (a per-tenant "solver" field still wins). The flag
    // is an operator-level input like pool/engine presets: a typo fails
    // the whole batch fast with the unknown-solver exit code, rather than
    // surfacing as N identical per-tenant errors and a zero exit.
    if let Some(default) = default_solver {
        dot_core::advisor::Registry::builtin().get(default)?;
        for tenant in &mut tenants {
            tenant.solver.get_or_insert_with(|| default.to_owned());
        }
    }
    let report = fleet::provision_fleet(&tenants, &config);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| {
                ProvisionError::InvalidRequest {
                    reason: format!("serialize fleet report: {e}"),
                }
            })?
        );
        return Ok(());
    }
    print_fleet_report(&report);
    Ok(())
}

fn print_fleet_report(report: &FleetReport) {
    println!("fleet of {} tenant(s):", report.tenants.len());
    for outcome in &report.tenants {
        match (&outcome.recommendation, &outcome.error) {
            (Some(rec), _) => println!(
                "    {:<20} {:<12} {:>10.4} cents/hour  ({} layouts in {} ms)",
                outcome.tenant,
                outcome.solver,
                rec.estimate.layout_cost_cents_per_hour,
                rec.provenance.layouts_investigated,
                rec.provenance.elapsed_ms,
            ),
            (None, Some(err)) => {
                println!(
                    "    {:<20} {:<12} error[{}]: {err}",
                    outcome.tenant,
                    outcome.solver,
                    err.kind()
                )
            }
            (None, None) => unreachable!("an outcome is a recommendation or an error"),
        }
    }
    println!(
        "\naggregate bill ({} provisioned, {} failed):",
        report.aggregate.tenants_provisioned, report.aggregate.tenants_failed
    );
    for line in &report.aggregate.classes {
        println!(
            "    {:<14} {:>10.2} GB  {:>10.4} cents/hour",
            line.class, line.gb, line.cents_per_hour
        );
    }
    println!(
        "    total {:.4} cents/hour",
        report.aggregate.total_cents_per_hour
    );
    println!(
        "\nTOC cache: {} hits / {} misses (hit rate {:.1}%), {} entries; wall clock {} ms",
        report.cache.hits,
        report.cache.misses,
        report.cache.hit_rate() * 100.0,
        report.cache.entries,
        report.wall_ms,
    );
}

fn cmd_catalog() {
    use dot_storage::catalog;
    println!("built-in pools:");
    for pool in [catalog::box1(), catalog::box2(), catalog::full_pool()] {
        println!("  {} —", pool.name());
        for class in pool.classes() {
            println!(
                "      {:<14} {:>8.1} GB  {:>10.3e} cents/GB/hour  RR {:>6.3} ms",
                class.name,
                class.capacity_gb,
                class.price_cents_per_gb_hour,
                class.profile.at_c1[1],
            );
        }
    }
    println!("\ndatabase presets: {}", presets::DATABASE_HINT);
}

fn cmd_solvers() {
    let registry = dot_core::advisor::Registry::builtin();
    println!("registered solvers (pass to provision via --solver <id>):");
    for solver in registry.iter() {
        println!("  {:<28} {}", solver.id(), solver.describe());
    }
}

fn cmd_provision(path: &str, solver: &str, json: bool) -> Result<(), ProvisionError> {
    let req = load(path)?;
    let advisor = Advisor::builder(&req.schema, &req.pool, &req.workload)
        .sla(req.sla)
        .engine(req.engine)
        .refinements(req.refinements)
        .build()?;
    let rec = advisor.recommend(solver)?;
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rec).map_err(|e| ProvisionError::InvalidRequest {
                reason: format!("serialize recommendation: {e}"),
            })?
        );
        return Ok(());
    }
    print_report(&req, &advisor, &rec);
    Ok(())
}

fn print_report(req: &Request, advisor: &Advisor<'_>, rec: &Recommendation) {
    println!(
        "database: {} objects, {:.1} GB; pool {}; relative SLA {}; solver {}\n",
        req.schema.object_count(),
        req.schema.total_size_gb(),
        req.pool.name(),
        req.sla,
        rec.provenance.solver,
    );
    println!("recommended layout ({}):", rec.label);
    for (object, class) in &rec.placements {
        println!("    {object:<28} -> {class}");
    }
    println!("\nbill:");
    for line in &rec.bill {
        println!(
            "    {:<14} {:>10.2} GB  {:>10.4} cents/hour",
            line.class, line.gb, line.cents_per_hour
        );
    }
    let premium = advisor.evaluate_layout("premium", &advisor.problem().premium_layout());
    println!(
        "\nlayout cost {:.4} cents/hour (all-premium: {:.4}); objective {:.4} cents; \
         {} layouts investigated in {} ms",
        rec.estimate.layout_cost_cents_per_hour,
        premium.layout_cost_cents_per_hour,
        rec.estimate.objective_cents,
        rec.provenance.layouts_investigated,
        rec.provenance.elapsed_ms,
    );
    if (rec.provenance.final_sla - req.sla).abs() > 1e-12 {
        println!(
            "SLA relaxed from {} to {:.3} to admit a layout",
            req.sla, rec.provenance.final_sla
        );
    }
    if let Some(v) = &rec.validation {
        println!(
            "validation: PSR {:.0}% ({}), {} refinement round(s)",
            v.psr * 100.0,
            if v.passed { "passed" } else { "not passed" },
            rec.provenance.refinement_rounds
        );
    }
}

/// Load a deployed layout: either a bare serialized `Layout`, or any JSON
/// object carrying a `"layout"` key — so `provision --json` output files
/// work directly as `--current` inputs.
fn load_layout(path: &str) -> Result<Layout, ProvisionError> {
    let text = std::fs::read_to_string(path).map_err(|e| ProvisionError::InvalidRequest {
        reason: format!("read {path}: {e}"),
    })?;
    let value: serde::Value =
        serde_json::from_str(&text).map_err(|e| ProvisionError::InvalidRequest {
            reason: format!("parse {path}: {e}"),
        })?;
    let nested = value
        .as_object()
        .and_then(|entries| entries.iter().find(|(k, _)| k == "layout"))
        .map(|(_, v)| v);
    Layout::from_value(nested.unwrap_or(&value)).map_err(|e| ProvisionError::InvalidRequest {
        reason: format!("{path}: neither a Layout nor a Recommendation: {e}"),
    })
}

/// The `dot-cli replan --window-seconds --json` output: the maintenance-
/// window rollout wrapped with the same provenance as [`ReplanEnvelope`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, Deserialize)]
struct RolloutEnvelope {
    provenance: ControlProvenance,
    rollout: WindowedRollout,
}

fn cmd_replan(
    path: &str,
    current_path: &str,
    solver: &str,
    opts: &ReplanOptions,
    window_seconds: Option<f64>,
    json: bool,
) -> Result<(), ProvisionError> {
    let start = Instant::now();
    let req = load(path)?;
    let current = load_layout(current_path)?;
    let advisor = Advisor::builder(&req.schema, &req.pool, &req.workload)
        .sla(req.sla)
        .engine(req.engine)
        .refinements(req.refinements)
        .build()?;
    // A window length splits the plan into recurring maintenance windows:
    // each window replans from where the previous one left off.
    if let Some(window) = window_seconds {
        let rollout = advisor.replan_rollout(&current, solver, opts, window)?;
        if json {
            let envelope = RolloutEnvelope {
                provenance: ControlProvenance {
                    elapsed_ms: start.elapsed().as_millis() as u64,
                    trigger: TriggerReason::Manual,
                },
                rollout,
            };
            println!(
                "{}",
                serde_json::to_string_pretty(&envelope).map_err(|e| {
                    ProvisionError::InvalidRequest {
                        reason: format!("serialize rollout envelope: {e}"),
                    }
                })?
            );
            return Ok(());
        }
        print_rollout_report(&req, window, &rollout);
        return Ok(());
    }
    let rec = advisor.replan_scheduled(&current, solver, opts)?;
    if json {
        // The one-shot plan shares the control-loop provenance schema; an
        // operator pulling the trigger by hand is the `Manual` stub.
        let envelope = ReplanEnvelope {
            provenance: ControlProvenance {
                elapsed_ms: start.elapsed().as_millis() as u64,
                trigger: TriggerReason::Manual,
            },
            replan: rec,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&envelope).map_err(|e| {
                ProvisionError::InvalidRequest {
                    reason: format!("serialize replan envelope: {e}"),
                }
            })?
        );
        return Ok(());
    }
    print_replan_report(&req, &advisor, &rec);
    Ok(())
}

fn print_rollout_report(req: &Request, window_seconds: f64, rollout: &WindowedRollout) {
    println!(
        "windowed rollout for workload {:?} on pool {}: {} maintenance window(s) of {:.0} s",
        req.workload.name,
        req.pool.name(),
        rollout.windows.len(),
        window_seconds,
    );
    for (i, rec) in rollout.windows.iter().enumerate() {
        let s = &rec.plan.schedule;
        println!(
            "    window {i}: {} move(s) in {} wave(s), {:.0} s makespan \
             ({:.0} s sequential), {:.2} GB",
            rec.plan.steps.len(),
            s.waves.len(),
            s.makespan_seconds,
            s.sequential_seconds,
            rec.plan.total_bytes / 1e9,
        );
    }
    println!(
        "rollout {}: {:.2} GB total in {:.0} s of scheduled transfer for {:.3e} cents",
        if rollout.complete {
            "reaches the target"
        } else {
            "stalls (budget exhausted before the target)"
        },
        rollout
            .windows
            .iter()
            .map(|w| w.plan.total_bytes)
            .sum::<f64>()
            / 1e9,
        rollout.total_seconds,
        rollout.total_cents,
    );
}

fn print_replan_report(req: &Request, advisor: &Advisor<'_>, rec: &ReplanRecommendation) {
    let pool = &req.pool;
    println!(
        "drifted workload {:?} on pool {}; relative SLA {}; target solver {}",
        req.workload.name,
        pool.name(),
        req.sla,
        rec.target.provenance.solver,
    );
    println!(
        "deployed layout: {:.4} cents/hour, {} under the drifted constraints",
        rec.current_estimate.layout_cost_cents_per_hour,
        if rec.current_feasible {
            "still feasible"
        } else {
            "SLA-VIOLATING"
        },
    );
    match &rec.plan.decision {
        MigrationDecision::Unchanged => {
            println!("\nverdict: unchanged — the drifted workload recommends the deployed layout");
            return;
        }
        MigrationDecision::Stay => {
            println!(
                "\nverdict: stay — migration cannot repay its bill under this budget \
                 (target layout: {:.4} cents/hour)",
                rec.target.estimate.layout_cost_cents_per_hour
            );
            return;
        }
        MigrationDecision::Migrate => {
            println!("\nverdict: migrate ({} moves)", rec.plan.steps.len())
        }
        MigrationDecision::Partial { deferred_groups } => println!(
            "\nverdict: partial migration ({} moves, {} group(s) deferred by the budget)",
            rec.plan.steps.len(),
            deferred_groups
        ),
    }
    let schema = &req.schema;
    for step in &rec.plan.steps {
        for ((&obj, &src), &dst) in step
            .mv
            .objects
            .iter()
            .zip(&step.from)
            .zip(&step.mv.placement)
        {
            if src == dst {
                continue;
            }
            println!(
                "    {:<28} {:<14} -> {:<14} {:>9.2} GB",
                schema.object(obj).name,
                pool.class_unchecked(src).name,
                pool.class_unchecked(dst).name,
                schema.object(obj).size_gb,
            );
        }
    }
    println!(
        "\nmigration: {:.2} GB moved in {:.0} s for {:.3e} cents; \
         saves {:.3e} cents/hour; break-even in {:.3e} h",
        rec.plan.total_bytes / 1e9,
        rec.plan.total_seconds,
        rec.plan.total_cents,
        rec.plan.savings_cents_per_hour,
        rec.plan.break_even_hours,
    );
    let sched = &rec.plan.schedule;
    if !sched.waves.is_empty() {
        println!(
            "schedule: {} wave(s), makespan {:.0} s (sequential {:.0} s, {:.0}% of it)",
            sched.waves.len(),
            sched.makespan_seconds,
            sched.sequential_seconds,
            if sched.sequential_seconds > 0.0 {
                100.0 * sched.makespan_seconds / sched.sequential_seconds
            } else {
                100.0
            },
        );
    }
    let premium = advisor.evaluate_layout("premium", &advisor.problem().premium_layout());
    println!(
        "final layout {:.4} cents/hour (target: {:.4}, all-premium: {:.4})",
        advisor
            .problem()
            .layout_cost_cents_per_hour(&rec.plan.final_layout),
        rec.target.estimate.layout_cost_cents_per_hour,
        premium.layout_cost_cents_per_hour,
    );
}

/// Where `supervise` gets its trace: a scripted JSON file (`--trace`) or a
/// generator spec (`--trace-gen`, parsed by [`dot_core::traces::generate`]).
enum TraceSource {
    File(String),
    Generated(String),
}

/// The keys a trace step accepts (see `dot_core::controller::TraceStep`).
const TRACE_KEYS: [&str; 4] = ["shift", "scale", "phase", "repeat"];

fn load_trace(path: &str) -> Result<Vec<TraceStep>, ProvisionError> {
    let text = std::fs::read_to_string(path).map_err(|e| ProvisionError::InvalidRequest {
        reason: format!("read {path}: {e}"),
    })?;
    let value: serde::Value =
        serde_json::from_str(&text).map_err(|e| ProvisionError::InvalidRequest {
            reason: format!("parse {path}: {e}"),
        })?;
    let Some(steps) = value.as_array() else {
        return Err(ProvisionError::InvalidRequest {
            reason: format!("{path}: a trace is a JSON array of steps"),
        });
    };
    if steps.is_empty() {
        return Err(ProvisionError::InvalidRequest {
            reason: format!("{path}: a trace needs at least one step"),
        });
    }
    for (i, step) in steps.iter().enumerate() {
        check_keys(step, &TRACE_KEYS, &format!("{path}: trace step {i}"))?;
    }
    Vec::<TraceStep>::from_value(&value).map_err(|e| ProvisionError::InvalidRequest {
        reason: format!("parse {path}: {e}"),
    })
}

#[allow(clippy::too_many_arguments)] // mirrors the flag surface
fn cmd_supervise(
    path: &str,
    trace_source: &TraceSource,
    current_path: Option<&str>,
    solver: &str,
    budget: &MigrationBudget,
    drift_threshold: Option<f64>,
    cooldown: Option<u64>,
    window_ticks: Option<u64>,
    json: bool,
    stream: bool,
) -> Result<(), ProvisionError> {
    let req = load(path)?;
    let trace = match trace_source {
        TraceSource::File(path) => load_trace(path)?,
        TraceSource::Generated(spec) => dot_core::traces::generate(spec)?,
    };
    let mut config = ControllerConfig {
        solver: solver.to_owned(),
        budget: *budget,
        ..ControllerConfig::default()
    };
    if let Some(threshold) = drift_threshold {
        config.drift_threshold = threshold;
    }
    if let Some(ticks) = cooldown {
        config.cooldown_ticks = ticks;
    }
    if window_ticks.is_some() {
        config.window_ticks = window_ticks;
    }
    config.validate()?;
    // The deployed layout: given, or what the baseline problem recommends.
    let current = match current_path {
        Some(p) => load_layout(p)?,
        None => {
            Advisor::builder(&req.schema, &req.pool, &req.workload)
                .sla(req.sla)
                .engine(req.engine)
                .refinements(req.refinements)
                .build()?
                .recommend(solver)?
                .layout
        }
    };
    if stream {
        return stream_supervise(&req, &trace, current, config);
    }
    let tenant = SuperviseTenantRequest {
        name: "tenant-0".to_owned(),
        pool: req.pool.clone(),
        schema: req.schema.clone(),
        workload: req.workload.clone(),
        sla: req.sla,
        solver: None,
        engine: req.engine_explicit.then_some(req.engine),
        refinements: Some(req.refinements),
        current_layout: current,
        trace,
        controller: None,
    };
    let report = fleet::supervise_fleet(&[tenant], &FleetConfig::default(), &config);
    // A single-tenant batch never fails as a batch; the tenant's own typed
    // error is the command's failure, surfaced through the usual exit-code
    // path. In `--json` mode the error document *replaces* the report —
    // stdout must stay one valid JSON value (main renders it).
    if let Some(e) = &report.tenants[0].error {
        if !json {
            print_supervise_report(&req, &config, &report);
        }
        return Err(e.clone());
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| {
                ProvisionError::InvalidRequest {
                    reason: format!("serialize supervise report: {e}"),
                }
            })?
        );
        return Ok(());
    }
    print_supervise_report(&req, &config, &report);
    Ok(())
}

/// `--stream`: replay the trace through one controller inline, emitting
/// the `dot-serve` wire protocol's response frames as JSON lines — one
/// `Event` frame per control event as each tick completes, then a
/// `Detached` frame with the tenant's summary (an `Error` frame carries a
/// mid-trace typed failure; events already streamed stay valid). The
/// controller's log is drained every tick, so memory stays bounded no
/// matter how long the trace runs.
fn stream_supervise(
    req: &Request,
    trace: &[TraceStep],
    current: Layout,
    config: ControllerConfig,
) -> Result<(), ProvisionError> {
    use dot_serve::protocol::{ProtocolError, Response, ResponseFrame, TenantSummary};
    let start = Instant::now();
    let mut out = std::io::stdout().lock();
    let mut emit = |response: Response| -> Result<(), ProvisionError> {
        dot_serve::framing::write_frame(&mut out, &ResponseFrame { id: 0, response })
            .and_then(|()| out.flush())
            .map_err(|e| ProvisionError::InvalidRequest {
                reason: format!("write stream: {e}"),
            })
    };
    let observations = dot_core::controller::expand_trace(&req.schema, &req.workload, trace)?;
    let mut controller = dot_core::controller::Controller::new(
        &req.schema,
        &req.pool,
        &req.workload,
        current,
        req.sla,
        config,
    )?
    .with_toc_cache(std::sync::Arc::new(dot_core::toc::CachedEstimator::new()))
    .with_refinements(req.refinements);
    if req.engine_explicit {
        controller = controller.with_engine(req.engine);
    }
    let mut triggers = 0;
    let mut applications = 0;
    let mut last_trigger = None;
    for observed in &observations {
        let failed = controller.observe(observed).err();
        // A failed tick still logged its observation (and possibly the
        // trigger): stream those, then the typed error frame.
        for event in controller.drain_events() {
            match &event {
                ControlEvent::Triggered { reason, .. } => {
                    triggers += 1;
                    last_trigger = Some(reason.clone());
                }
                ControlEvent::Applied { .. } => applications += 1,
                _ => {}
            }
            emit(Response::Event { tenant: 0, event })?;
        }
        if let Some(error) = failed {
            emit(Response::Error {
                error: ProtocolError::Provision {
                    error: error.clone(),
                },
            })?;
            return Err(error);
        }
    }
    emit(Response::Detached {
        summary: TenantSummary {
            tenant: 0,
            name: "tenant-0".to_owned(),
            ticks: controller.ticks(),
            triggers,
            applications,
            provenance: ControlProvenance {
                elapsed_ms: start.elapsed().as_millis() as u64,
                trigger: last_trigger.unwrap_or(TriggerReason::Quiescent),
            },
        },
    })
}

fn print_supervise_report(
    req: &Request,
    config: &ControllerConfig,
    report: &fleet::SuperviseFleetReport,
) {
    let outcome = &report.tenants[0];
    println!(
        "supervising baseline {:?} on pool {}; relative SLA {}; solver {}; \
         drift threshold {}, cool-down {} tick(s)\n",
        req.workload.name,
        req.pool.name(),
        req.sla,
        outcome.solver,
        config.drift_threshold,
        config.cooldown_ticks,
    );
    for event in &outcome.events {
        match event {
            ControlEvent::Observed {
                tick,
                distance,
                sla_pressure,
                feasible,
            } => println!(
                "    tick {tick:>3}  observed   distance {distance:.3}  sla-pressure {sla_pressure:.3}{}",
                if *feasible { "" } else { "  SLA-VIOLATING" }
            ),
            ControlEvent::Triggered { tick, reason } => {
                let why = match reason {
                    TriggerReason::Manual => "manual".to_owned(),
                    TriggerReason::Quiescent => "quiescent".to_owned(),
                    TriggerReason::Drift { distance } => format!("drift {distance:.3}"),
                    TriggerReason::Sla { pressure } => format!("sla pressure {pressure:.3}"),
                    TriggerReason::DriftAndSla { distance, pressure } => {
                        format!("drift {distance:.3} + sla pressure {pressure:.3}")
                    }
                    TriggerReason::Window { every_ticks } => {
                        format!("maintenance window (every {every_ticks} ticks)")
                    }
                };
                println!("    tick {tick:>3}  TRIGGERED  {why}");
            }
            ControlEvent::Planned {
                tick,
                decision,
                moves,
                total_bytes,
                break_even_hours,
                ..
            } => {
                let verdict = match decision {
                    MigrationDecision::Unchanged => "unchanged".to_owned(),
                    MigrationDecision::Stay => "stay".to_owned(),
                    MigrationDecision::Migrate => format!(
                        "migrate ({moves} moves, {:.2} GB, break-even {break_even_hours:.3e} h)",
                        total_bytes / 1e9
                    ),
                    MigrationDecision::Partial { deferred_groups } => format!(
                        "partial ({moves} moves, {deferred_groups} group(s) deferred, {:.2} GB)",
                        total_bytes / 1e9
                    ),
                };
                println!("    tick {tick:>3}  planned    {verdict}");
            }
            ControlEvent::Deferred { tick, reason } => {
                let why = match reason {
                    DeferReason::CoolingDown { last_trigger_tick } => {
                        format!("cooling down (last trigger tick {last_trigger_tick})")
                    }
                    DeferReason::Latched => "latched (signal has not cleared)".to_owned(),
                };
                println!("    tick {tick:>3}  deferred   {why}");
            }
            ControlEvent::Applied {
                tick,
                objects_moved,
                bytes_moved,
            } => println!(
                "    tick {tick:>3}  APPLIED    {objects_moved} object(s) moved, {:.2} GB",
                bytes_moved / 1e9
            ),
        }
    }
    println!(
        "\n{} tick(s): {} trigger(s), {} plan(s) applied, {:.2} GB moved; \
         TOC cache hit rate {:.1}%; wall clock {} ms",
        outcome.ticks,
        outcome.triggers,
        outcome.applications,
        report.totals.total_bytes_moved / 1e9,
        report.cache.hit_rate() * 100.0,
        report.wall_ms,
    );
    if let Some(err) = &outcome.error {
        println!("aborted: error[{}]: {err}", err.kind());
    }
}

fn cmd_explain(path: &str) -> Result<(), ProvisionError> {
    let req = load(path)?;
    let layout = dot_dbms::Layout::uniform(req.pool.most_expensive(), req.schema.object_count());
    let planned = planner::plan_workload(
        &req.workload.queries,
        &req.schema,
        &layout,
        &req.pool,
        &req.engine,
    );
    print!(
        "{}",
        explain::explain_workload(&planned, &req.schema, &layout, &req.pool, &req.engine)
    );
    Ok(())
}

/// One distinct exit code per [`ProvisionError`] variant, so scripts can
/// branch on the failure kind. 1 stays reserved for usage errors.
fn exit_code(err: &ProvisionError) -> u8 {
    match err {
        ProvisionError::InvalidRequest { .. } => 2,
        ProvisionError::UnknownSolver { .. } => 3,
        ProvisionError::UnknownPool { .. } => 4,
        ProvisionError::UnknownPreset { .. } => 5,
        ProvisionError::UnknownEngine { .. } => 6,
        ProvisionError::Infeasible { .. } => 7,
        ProvisionError::CapacityExceeded { .. } => 8,
        ProvisionError::UnsupportedWorkload { .. } => 9,
        ProvisionError::ClassUnavailable { .. } => 10,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dot-cli <catalog|solvers|provision|fleet|replan|supervise|explain> [args]\n\
         \n\
         dot-cli catalog\n\
         dot-cli solvers\n\
         dot-cli provision <problem.json> [--solver <id>] [--json]\n\
         dot-cli fleet <manifest.json> [--solver <id>] [--json]\n\
         dot-cli replan <problem.json> --current <layout.json> [--solver <id>]\n\
         \x20               [--budget-bytes <n>] [--budget-seconds <n>] [--budget-cents <n>]\n\
         \x20               [--sla-during-migration <r>] [--window-seconds <n>] [--json]\n\
         dot-cli supervise <problem.json> (--trace <trace.json> | --trace-gen <spec>)\n\
         \x20               [--current <layout.json>]\n\
         \x20               [--solver <id>] [--drift-threshold <x>] [--cooldown <n>]\n\
         \x20               [--window-ticks <n>]\n\
         \x20               [--budget-bytes <n>] [--budget-seconds <n>] [--budget-cents <n>]\n\
         \x20               [--json | --stream]\n\
         dot-cli serve [--listen <addr>] [--unix-socket <path>] [--workers <n>] [--cache-capacity <n>]\n\
         \x20               [--state-dir <dir>] [--tenant-inflight <n>] [--busy-retry-ms <n>]\n\
         dot-cli explain <problem.json>"
    );
    ExitCode::FAILURE
}

/// Every accepted flag, with whether it consumes the next argument (the
/// scanner needs this to step over values that themselves start with `--`
/// would-be flags).
const KNOWN_FLAGS: [(&str, bool); 14] = [
    ("--json", false),
    ("--stream", false),
    ("--solver", true),
    ("--current", true),
    ("--budget-bytes", true),
    ("--budget-seconds", true),
    ("--budget-cents", true),
    ("--sla-during-migration", true),
    ("--window-seconds", true),
    ("--window-ticks", true),
    ("--trace", true),
    ("--trace-gen", true),
    ("--drift-threshold", true),
    ("--cooldown", true),
];

/// The flags each subcommand accepts. A typo'd flag — or a real flag on
/// the wrong subcommand (`provision --current`, `replan
/// --drift-threshold`) — is a usage error naming it and listing what this
/// subcommand takes; never silently ignored, matching the unknown-key
/// policy of the JSON loaders.
fn allowed_flags(subcommand: &str) -> &'static [&'static str] {
    match subcommand {
        "provision" | "fleet" => &["--json", "--solver"],
        "replan" => &[
            "--json",
            "--solver",
            "--current",
            "--budget-bytes",
            "--budget-seconds",
            "--budget-cents",
            "--sla-during-migration",
            "--window-seconds",
        ],
        "supervise" => &[
            "--json",
            "--stream",
            "--solver",
            "--current",
            "--trace",
            "--trace-gen",
            "--drift-threshold",
            "--cooldown",
            "--window-ticks",
            "--budget-bytes",
            "--budget-seconds",
            "--budget-cents",
        ],
        // catalog, solvers, explain (and unknown subcommands, which fail
        // to usage anyway) take no flags.
        _ => &[],
    }
}

fn reject_unknown_flags(args: &[String]) -> Result<(), ExitCode> {
    let allowed = allowed_flags(args.get(1).map(String::as_str).unwrap_or(""));
    let mut i = 1; // skip argv[0]
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with("--") {
            if !allowed.contains(&arg.as_str()) {
                eprintln!(
                    "error: unknown flag {arg:?} for this subcommand (accepted: {})",
                    if allowed.is_empty() {
                        "none".to_owned()
                    } else {
                        allowed.join(", ")
                    }
                );
                return Err(ExitCode::FAILURE);
            }
            let takes_value = KNOWN_FLAGS
                .iter()
                .find(|(flag, _)| flag == arg)
                .map(|(_, takes)| *takes)
                .unwrap_or(false);
            i += 1 + usize::from(takes_value);
        } else {
            i += 1;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    // The daemon owns its flag surface (one parser for `dot-serve` and
    // `dot-cli serve`, so the two entry points cannot drift); hand over
    // before this binary's own flag discipline sees the arguments.
    if args.get(1).map(String::as_str) == Some("serve") {
        return ExitCode::from(dot_serve::cli::run(&args[2..]).clamp(0, 255) as u8);
    }
    if let Err(code) = reject_unknown_flags(&args) {
        return code;
    }
    let json = args.iter().any(|a| a == "--json");
    let stream = args.iter().any(|a| a == "--stream");
    if json && stream {
        eprintln!("error: --json and --stream are mutually exclusive");
        return ExitCode::FAILURE;
    }
    // `provision` defaults a missing flag to "dot"; `fleet` keeps the
    // distinction so the manifest's per-tenant solvers are only overridden
    // by an explicit flag.
    let solver_flag = match args.iter().position(|a| a == "--solver") {
        Some(i) => match args.get(i + 1) {
            Some(id) => Some(id.clone()),
            None => {
                eprintln!("error: --solver needs a solver id (see dot-cli solvers)");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // `replan`-only flags: the deployed layout and the migration budget.
    let value_flag = |flag: &str| -> Result<Option<String>, ExitCode> {
        match args.iter().position(|a| a == flag) {
            Some(i) => match args.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => {
                    eprintln!("error: {flag} needs a value");
                    Err(ExitCode::FAILURE)
                }
            },
            None => Ok(None),
        }
    };
    let current_flag = match value_flag("--current") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let trace_flag = match value_flag("--trace") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let trace_gen_flag = match value_flag("--trace-gen") {
        Ok(v) => v,
        Err(code) => return code,
    };
    // Numeric knobs share one parse-or-usage-error path, generic over the
    // value type (f64 thresholds/budgets, u64 tick counts).
    fn parse_flag<T: std::str::FromStr>(
        raw: Result<Option<String>, ExitCode>,
        flag: &str,
        wants: &str,
    ) -> Result<Option<T>, ExitCode> {
        match raw? {
            Some(raw) => match raw.parse::<T>() {
                Ok(v) => Ok(Some(v)),
                Err(_) => {
                    eprintln!("error: {flag} needs {wants}, got {raw:?}");
                    Err(ExitCode::FAILURE)
                }
            },
            None => Ok(None),
        }
    }
    let drift_threshold = match parse_flag::<f64>(
        value_flag("--drift-threshold"),
        "--drift-threshold",
        "a number",
    ) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let cooldown = match parse_flag::<u64>(
        value_flag("--cooldown"),
        "--cooldown",
        "a whole number of ticks",
    ) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let mut budget = MigrationBudget::unbounded();
    budget.max_bytes =
        match parse_flag::<f64>(value_flag("--budget-bytes"), "--budget-bytes", "a number") {
            Ok(v) => v,
            Err(code) => return code,
        };
    budget.max_seconds = match parse_flag::<f64>(
        value_flag("--budget-seconds"),
        "--budget-seconds",
        "a number",
    ) {
        Ok(v) => v,
        Err(code) => return code,
    };
    budget.max_cents =
        match parse_flag::<f64>(value_flag("--budget-cents"), "--budget-cents", "a number") {
            Ok(v) => v,
            Err(code) => return code,
        };
    let sla_during_migration = match parse_flag::<f64>(
        value_flag("--sla-during-migration"),
        "--sla-during-migration",
        "a relative SLA ratio in (0, 1]",
    ) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let window_seconds = match parse_flag::<f64>(
        value_flag("--window-seconds"),
        "--window-seconds",
        "a window length in seconds",
    ) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let window_ticks = match parse_flag::<u64>(
        value_flag("--window-ticks"),
        "--window-ticks",
        "a whole number of ticks",
    ) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let replan_opts = ReplanOptions {
        budget,
        sla_during_migration,
    };
    let result = match args.get(1).map(String::as_str) {
        Some("catalog") => {
            cmd_catalog();
            Ok(())
        }
        Some("solvers") => {
            cmd_solvers();
            Ok(())
        }
        Some("provision") => match args.get(2).filter(|a| !a.starts_with("--")) {
            Some(path) => cmd_provision(path, solver_flag.as_deref().unwrap_or("dot"), json),
            None => return usage(),
        },
        Some("fleet") => match args.get(2).filter(|a| !a.starts_with("--")) {
            Some(path) => cmd_fleet(path, solver_flag.as_deref(), json),
            None => return usage(),
        },
        Some("replan") => match (args.get(2).filter(|a| !a.starts_with("--")), &current_flag) {
            (Some(path), Some(current)) => cmd_replan(
                path,
                current,
                solver_flag.as_deref().unwrap_or("dot"),
                &replan_opts,
                window_seconds,
                json,
            ),
            _ => {
                eprintln!("error: replan needs a drifted problem file and --current <layout.json>");
                return usage();
            }
        },
        Some("supervise") => {
            let source = match (&trace_flag, &trace_gen_flag) {
                (Some(path), None) => Some(TraceSource::File(path.clone())),
                (None, Some(spec)) => Some(TraceSource::Generated(spec.clone())),
                (Some(_), Some(_)) => {
                    eprintln!("error: --trace and --trace-gen are mutually exclusive");
                    return ExitCode::FAILURE;
                }
                (None, None) => None,
            };
            match (args.get(2).filter(|a| !a.starts_with("--")), source) {
                (Some(path), Some(source)) => cmd_supervise(
                    path,
                    &source,
                    current_flag.as_deref(),
                    solver_flag.as_deref().unwrap_or("dot"),
                    &budget,
                    drift_threshold,
                    cooldown,
                    window_ticks,
                    json,
                    stream,
                ),
                _ => {
                    eprintln!(
                        "error: supervise needs a baseline problem file and --trace \
                         <trace.json> or --trace-gen <spec>"
                    );
                    return usage();
                }
            }
        }
        Some("explain") => match args.get(2) {
            Some(path) => cmd_explain(path),
            None => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if json {
                // Machine consumers get the typed error itself.
                if let Ok(body) = serde_json::to_string_pretty(&e) {
                    println!("{body}");
                }
            }
            eprintln!("error[{}]: {e}", e.kind());
            ExitCode::from(exit_code(&e))
        }
    }
}
