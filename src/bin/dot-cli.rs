//! `dot-cli` — provision storage from the command line.
//!
//! ```text
//! dot-cli catalog                      list built-in pools and Table 1 profiles
//! dot-cli provision <problem.json>     run the DOT pipeline on a problem file
//! dot-cli explain   <problem.json>     show premium-layout plans and I/O
//! ```
//!
//! A problem file names a storage pool (built-in or inline JSON), a database
//! (preset like `"tpch:20:original"`, `"tpcc:300"`, `"ycsb:10000000:A"`, or
//! inline schema+workload JSON), a relative SLA, and an engine preset:
//!
//! ```json
//! { "pool": "box2", "database": "tpch:4:original", "sla": 0.5, "engine": "dss" }
//! ```

use dot_core::{constraints, dot, problem::Problem, report};
use dot_dbms::{explain, planner, EngineConfig, Schema};
use dot_profiler::ProfileSource;
use dot_storage::{catalog, StoragePool};
use dot_workloads::{tpcc, tpch, ycsb, SlaSpec, Workload};
use serde::Deserialize;
use std::process::ExitCode;

#[derive(Deserialize)]
struct ProblemFile {
    pool: PoolSpec,
    database: DbSpec,
    sla: f64,
    #[serde(default)]
    engine: Option<String>,
    #[serde(default)]
    refinements: Option<usize>,
}

#[derive(Deserialize)]
#[serde(untagged)]
enum PoolSpec {
    Name(String),
    Custom(StoragePool),
}

#[derive(Deserialize)]
#[serde(untagged)]
enum DbSpec {
    Preset(String),
    Custom { schema: Schema, workload: Workload },
}

fn resolve_pool(spec: PoolSpec) -> Result<StoragePool, String> {
    match spec {
        PoolSpec::Custom(pool) => Ok(pool),
        PoolSpec::Name(name) => match name.as_str() {
            "box1" => Ok(catalog::box1()),
            "box2" => Ok(catalog::box2()),
            "full" => Ok(catalog::full_pool()),
            other => Err(format!("unknown pool preset {other:?} (box1|box2|full)")),
        },
    }
}

fn resolve_database(spec: DbSpec) -> Result<(Schema, Workload), String> {
    match spec {
        DbSpec::Custom { schema, workload } => Ok((schema, workload)),
        DbSpec::Preset(preset) => {
            let parts: Vec<&str> = preset.split(':').collect();
            match parts.as_slice() {
                ["tpch", sf, flavor] => {
                    let sf: f64 = sf.parse().map_err(|e| format!("bad scale factor: {e}"))?;
                    let schema = tpch::schema(sf);
                    let workload = match *flavor {
                        "original" => tpch::original_workload(&schema),
                        "modified" => tpch::modified_workload(&schema),
                        other => return Err(format!("unknown tpch flavor {other:?}")),
                    };
                    Ok((schema, workload))
                }
                ["tpch-subset", sf] => {
                    let sf: f64 = sf.parse().map_err(|e| format!("bad scale factor: {e}"))?;
                    let schema = tpch::subset_schema(sf);
                    let workload = tpch::subset_workload(&schema);
                    Ok((schema, workload))
                }
                ["tpcc", warehouses] => {
                    let w: f64 = warehouses
                        .parse()
                        .map_err(|e| format!("bad warehouse count: {e}"))?;
                    let schema = tpcc::schema(w);
                    let workload = tpcc::workload(&schema);
                    Ok((schema, workload))
                }
                ["ycsb", records, mix] => {
                    let records: f64 = records
                        .parse()
                        .map_err(|e| format!("bad record count: {e}"))?;
                    let mix = match mix.to_ascii_uppercase().as_str() {
                        "A" => ycsb::YcsbMix::A,
                        "B" => ycsb::YcsbMix::B,
                        "C" => ycsb::YcsbMix::C,
                        "D" => ycsb::YcsbMix::D,
                        "E" => ycsb::YcsbMix::E,
                        "F" => ycsb::YcsbMix::F,
                        other => return Err(format!("unknown YCSB mix {other:?}")),
                    };
                    let schema = ycsb::schema(records);
                    let workload = ycsb::workload(&schema, mix, 300);
                    Ok((schema, workload))
                }
                _ => Err(format!(
                    "unknown database preset {preset:?} \
                     (tpch:<sf>:<original|modified> | tpch-subset:<sf> | tpcc:<w> | ycsb:<n>:<A-F>)"
                )),
            }
        }
    }
}

fn resolve_engine(name: Option<&str>, workload: &Workload) -> Result<EngineConfig, String> {
    match name {
        Some("dss") => Ok(EngineConfig::dss()),
        Some("oltp") => Ok(EngineConfig::oltp()),
        Some(other) => Err(format!("unknown engine preset {other:?} (dss|oltp)")),
        None => Ok(match workload.metric {
            dot_workloads::PerfMetric::ResponseTime => EngineConfig::dss(),
            dot_workloads::PerfMetric::Throughput => EngineConfig::oltp(),
        }),
    }
}

fn load(path: &str) -> Result<(StoragePool, Schema, Workload, f64, EngineConfig, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let file: ProblemFile =
        serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
    if !(file.sla > 0.0 && file.sla <= 1.0) {
        return Err(format!("sla {} out of (0, 1]", file.sla));
    }
    let pool = resolve_pool(file.pool)?;
    let (schema, workload) = resolve_database(file.database)?;
    let engine = resolve_engine(file.engine.as_deref(), &workload)?;
    Ok((
        pool,
        schema,
        workload,
        file.sla,
        engine,
        file.refinements.unwrap_or(1),
    ))
}

fn cmd_catalog() {
    println!("built-in pools:");
    for pool in [catalog::box1(), catalog::box2(), catalog::full_pool()] {
        println!("  {} —", pool.name());
        for class in pool.classes() {
            println!(
                "      {:<14} {:>8.1} GB  {:>10.3e} cents/GB/hour  RR {:>6.3} ms",
                class.name,
                class.capacity_gb,
                class.price_cents_per_gb_hour,
                class.profile.at_c1[1],
            );
        }
    }
    println!("\ndatabase presets: tpch:<sf>:<original|modified>, tpch-subset:<sf>, tpcc:<warehouses>, ycsb:<records>:<A-F>");
}

fn cmd_provision(path: &str, json: bool) -> Result<(), String> {
    let (pool, schema, workload, sla, engine, refinements) = load(path)?;
    let problem = Problem::new(&schema, &pool, &workload, SlaSpec::relative(sla), engine);
    let result = dot::run_pipeline(&problem, ProfileSource::Estimate, refinements);
    let Some(layout) = &result.outcome.layout else {
        return Err("infeasible: no layout satisfies the SLA and capacities".into());
    };
    let cons = constraints::derive(&problem);
    let eval = report::evaluate(&problem, &cons, "DOT", layout);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&eval).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "database: {} objects, {:.1} GB; pool {}; relative SLA {sla}\n",
        schema.object_count(),
        schema.total_size_gb(),
        pool.name()
    );
    println!("recommended layout:");
    for (object, class) in &eval.placements {
        println!("    {object:<28} -> {class}");
    }
    let premium = report::evaluate(&problem, &cons, "premium", &problem.premium_layout());
    println!(
        "\nlayout cost {:.4} cents/hour (all-premium: {:.4}); objective {:.4} cents; PSR {:.0}%",
        eval.layout_cost_cents_per_hour,
        premium.layout_cost_cents_per_hour,
        eval.objective_cents,
        eval.psr_percent
    );
    if let Some(v) = &result.validation {
        println!(
            "validation: PSR {:.0}% ({}), {} refinement round(s)",
            v.psr * 100.0,
            if v.passed { "passed" } else { "not passed" },
            result.refinement_rounds
        );
    }
    Ok(())
}

fn cmd_explain(path: &str) -> Result<(), String> {
    let (pool, schema, workload, _sla, engine, _) = load(path)?;
    let layout = dot_dbms::Layout::uniform(pool.most_expensive(), schema.object_count());
    let planned = planner::plan_workload(&workload.queries, &schema, &layout, &pool, &engine);
    print!(
        "{}",
        explain::explain_workload(&planned, &schema, &layout, &pool, &engine)
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let result = match args.get(1).map(String::as_str) {
        Some("catalog") => {
            cmd_catalog();
            Ok(())
        }
        Some("provision") => match args.get(2) {
            Some(path) => cmd_provision(path, json),
            None => Err("usage: dot-cli provision <problem.json> [--json]".into()),
        },
        Some("explain") => match args.get(2) {
            Some(path) => cmd_explain(path),
            None => Err("usage: dot-cli explain <problem.json>".into()),
        },
        _ => Err("usage: dot-cli <catalog|provision|explain> [args]".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
