//! `dot-cli` — provision storage from the command line, through the
//! `dot_core::advisor` facade.
//!
//! ```text
//! dot-cli catalog                      list built-in pools and Table 1 profiles
//! dot-cli solvers                      list every registered solver id
//! dot-cli provision <problem.json>     run a solver on a problem file
//!         [--solver <id>]              pick the optimizer (default "dot")
//!         [--json]                     emit the serialized Recommendation
//! dot-cli explain   <problem.json>     show premium-layout plans and I/O
//! ```
//!
//! A problem file names a storage pool (built-in or inline JSON), a database
//! (preset like `"tpch:20:original"`, `"tpcc:300"`, `"ycsb:10000000:A"`, or
//! inline schema+workload JSON), a relative SLA, and an engine preset:
//!
//! ```json
//! { "pool": "box2", "database": "tpch:4:original", "sla": 0.5, "engine": "dss" }
//! ```
//!
//! Failures exit with a distinct code per [`ProvisionError`] variant (see
//! [`exit_code`]), so scripts can tell an unknown pool from an infeasible
//! SLA without parsing stderr; `--json` renders the error itself as JSON.

use dot_core::advisor::{presets, Advisor, ProvisionError, Recommendation};
use dot_dbms::{explain, planner, EngineConfig, Schema};
use dot_storage::StoragePool;
use dot_workloads::Workload;
use serde::Deserialize;
use std::process::ExitCode;

#[derive(Deserialize)]
struct ProblemFile {
    pool: PoolSpec,
    database: DbSpec,
    sla: f64,
    #[serde(default)]
    engine: Option<String>,
    #[serde(default)]
    refinements: Option<usize>,
}

#[derive(Deserialize)]
#[serde(untagged)]
enum PoolSpec {
    Name(String),
    Custom(StoragePool),
}

#[derive(Deserialize)]
#[serde(untagged)]
enum DbSpec {
    Preset(String),
    Custom { schema: Schema, workload: Workload },
}

/// Everything a problem file resolves to.
struct Request {
    pool: StoragePool,
    schema: Schema,
    workload: Workload,
    sla: f64,
    engine: EngineConfig,
    refinements: usize,
}

fn load(path: &str) -> Result<Request, ProvisionError> {
    let text = std::fs::read_to_string(path).map_err(|e| ProvisionError::InvalidRequest {
        reason: format!("read {path}: {e}"),
    })?;
    let file: ProblemFile =
        serde_json::from_str(&text).map_err(|e| ProvisionError::InvalidRequest {
            reason: format!("parse {path}: {e}"),
        })?;
    if !(file.sla > 0.0 && file.sla <= 1.0) {
        return Err(ProvisionError::InvalidRequest {
            reason: format!("sla {} out of (0, 1]", file.sla),
        });
    }
    let pool = match file.pool {
        PoolSpec::Custom(pool) => pool,
        PoolSpec::Name(name) => presets::pool(&name)?,
    };
    let (schema, workload) = match file.database {
        DbSpec::Custom { schema, workload } => (schema, workload),
        DbSpec::Preset(preset) => presets::database(&preset)?,
    };
    let engine = presets::engine(file.engine.as_deref(), &workload)?;
    Ok(Request {
        pool,
        schema,
        workload,
        sla: file.sla,
        engine,
        refinements: file.refinements.unwrap_or(1),
    })
}

fn cmd_catalog() {
    use dot_storage::catalog;
    println!("built-in pools:");
    for pool in [catalog::box1(), catalog::box2(), catalog::full_pool()] {
        println!("  {} —", pool.name());
        for class in pool.classes() {
            println!(
                "      {:<14} {:>8.1} GB  {:>10.3e} cents/GB/hour  RR {:>6.3} ms",
                class.name,
                class.capacity_gb,
                class.price_cents_per_gb_hour,
                class.profile.at_c1[1],
            );
        }
    }
    println!("\ndatabase presets: {}", presets::DATABASE_HINT);
}

fn cmd_solvers() {
    let registry = dot_core::advisor::Registry::builtin();
    println!("registered solvers (pass to provision via --solver <id>):");
    for solver in registry.iter() {
        println!("  {:<28} {}", solver.id(), solver.describe());
    }
}

fn cmd_provision(path: &str, solver: &str, json: bool) -> Result<(), ProvisionError> {
    let req = load(path)?;
    let advisor = Advisor::builder(&req.schema, &req.pool, &req.workload)
        .sla(req.sla)
        .engine(req.engine)
        .refinements(req.refinements)
        .build()?;
    let rec = advisor.recommend(solver)?;
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rec).map_err(|e| ProvisionError::InvalidRequest {
                reason: format!("serialize recommendation: {e}"),
            })?
        );
        return Ok(());
    }
    print_report(&req, &advisor, &rec);
    Ok(())
}

fn print_report(req: &Request, advisor: &Advisor<'_>, rec: &Recommendation) {
    println!(
        "database: {} objects, {:.1} GB; pool {}; relative SLA {}; solver {}\n",
        req.schema.object_count(),
        req.schema.total_size_gb(),
        req.pool.name(),
        req.sla,
        rec.provenance.solver,
    );
    println!("recommended layout ({}):", rec.label);
    for (object, class) in &rec.placements {
        println!("    {object:<28} -> {class}");
    }
    println!("\nbill:");
    for line in &rec.bill {
        println!(
            "    {:<14} {:>10.2} GB  {:>10.4} cents/hour",
            line.class, line.gb, line.cents_per_hour
        );
    }
    let premium = advisor.evaluate_layout("premium", &advisor.problem().premium_layout());
    println!(
        "\nlayout cost {:.4} cents/hour (all-premium: {:.4}); objective {:.4} cents; \
         {} layouts investigated in {} ms",
        rec.estimate.layout_cost_cents_per_hour,
        premium.layout_cost_cents_per_hour,
        rec.estimate.objective_cents,
        rec.provenance.layouts_investigated,
        rec.provenance.elapsed_ms,
    );
    if (rec.provenance.final_sla - req.sla).abs() > 1e-12 {
        println!(
            "SLA relaxed from {} to {:.3} to admit a layout",
            req.sla, rec.provenance.final_sla
        );
    }
    if let Some(v) = &rec.validation {
        println!(
            "validation: PSR {:.0}% ({}), {} refinement round(s)",
            v.psr * 100.0,
            if v.passed { "passed" } else { "not passed" },
            rec.provenance.refinement_rounds
        );
    }
}

fn cmd_explain(path: &str) -> Result<(), ProvisionError> {
    let req = load(path)?;
    let layout = dot_dbms::Layout::uniform(req.pool.most_expensive(), req.schema.object_count());
    let planned = planner::plan_workload(
        &req.workload.queries,
        &req.schema,
        &layout,
        &req.pool,
        &req.engine,
    );
    print!(
        "{}",
        explain::explain_workload(&planned, &req.schema, &layout, &req.pool, &req.engine)
    );
    Ok(())
}

/// One distinct exit code per [`ProvisionError`] variant, so scripts can
/// branch on the failure kind. 1 stays reserved for usage errors.
fn exit_code(err: &ProvisionError) -> u8 {
    match err {
        ProvisionError::InvalidRequest { .. } => 2,
        ProvisionError::UnknownSolver { .. } => 3,
        ProvisionError::UnknownPool { .. } => 4,
        ProvisionError::UnknownPreset { .. } => 5,
        ProvisionError::UnknownEngine { .. } => 6,
        ProvisionError::Infeasible { .. } => 7,
        ProvisionError::CapacityExceeded { .. } => 8,
        ProvisionError::UnsupportedWorkload { .. } => 9,
        ProvisionError::ClassUnavailable { .. } => 10,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dot-cli <catalog|solvers|provision|explain> [args]\n\
         \n\
         dot-cli catalog\n\
         dot-cli solvers\n\
         dot-cli provision <problem.json> [--solver <id>] [--json]\n\
         dot-cli explain <problem.json>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let solver = args
        .iter()
        .position(|a| a == "--solver")
        .map(|i| args.get(i + 1).cloned());
    let solver = match solver {
        Some(None) => {
            eprintln!("error: --solver needs a solver id (see dot-cli solvers)");
            return ExitCode::FAILURE;
        }
        Some(Some(id)) => id,
        None => "dot".to_owned(),
    };
    let result = match args.get(1).map(String::as_str) {
        Some("catalog") => {
            cmd_catalog();
            Ok(())
        }
        Some("solvers") => {
            cmd_solvers();
            Ok(())
        }
        Some("provision") => match args.get(2).filter(|a| !a.starts_with("--")) {
            Some(path) => cmd_provision(path, &solver, json),
            None => return usage(),
        },
        Some("explain") => match args.get(2) {
            Some(path) => cmd_explain(path),
            None => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if json {
                // Machine consumers get the typed error itself.
                if let Ok(body) = serde_json::to_string_pretty(&e) {
                    println!("{body}");
                }
            }
            eprintln!("error[{}]: {e}", e.kind());
            ExitCode::from(exit_code(&e))
        }
    }
}
