//! Umbrella crate re-exporting the DOT reproduction stack.
pub use dot_core as core;
pub use dot_dbms as dbms;
pub use dot_profiler as profiler;
pub use dot_storage as storage;
pub use dot_workloads as workloads;
